// Topology-layer properties and topology-driven Network behaviour: the
// adjacency/routing contracts every Topology instance must satisfy, the
// deadlock-freedom drain tests for the wraparound topologies, and the
// lockstep fingerprint proving the refactored MeshTopology network is
// cycle-identical to the pre-refactor hard-wired mesh.
#include "noc/network.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "noc/mesh.hpp"
#include "sim/rng.hpp"

namespace rasoc::noc {
namespace {

using router::Port;
using sim::Simulator;

std::vector<std::shared_ptr<const Topology>> sampleTopologies() {
  return {
      std::make_shared<MeshTopology>(4, 4),
      std::make_shared<MeshTopology>(5, 3),
      std::make_shared<TorusTopology>(4, 4),
      std::make_shared<TorusTopology>(5, 3),
      std::make_shared<RingTopology>(8),
      std::make_shared<RingTopology>(2),
  };
}

TEST(TopologyContractTest, IndexingRoundTripsAndThrowsOutside) {
  for (const auto& topo : sampleTopologies()) {
    SCOPED_TRACE(topo->describe());
    for (int i = 0; i < topo->nodes(); ++i) {
      EXPECT_EQ(topo->indexOf(topo->nodeAt(i)), i);
      EXPECT_TRUE(topo->contains(topo->nodeAt(i)));
    }
    EXPECT_THROW(topo->nodeAt(-1), std::out_of_range);
    EXPECT_THROW(topo->nodeAt(topo->nodes()), std::out_of_range);
    EXPECT_THROW(topo->indexOf(NodeId{-1, 0}), std::out_of_range);
    EXPECT_THROW(topo->indexOf(NodeId{0, 99}), std::out_of_range);
  }
}

TEST(TopologyContractTest, AdjacencyIsSymmetricWithMatchingPortMasks) {
  for (const auto& topo : sampleTopologies()) {
    SCOPED_TRACE(topo->describe());
    EXPECT_NO_THROW(topo->checkAdjacency());
    // The property spelled out, independent of checkAdjacency's own code.
    for (int i = 0; i < topo->nodes(); ++i) {
      const NodeId n = topo->nodeAt(i);
      for (Port p : router::kAllPorts) {
        if (p == Port::Local) continue;
        const auto nb = topo->neighbor(n, p);
        EXPECT_EQ(nb.has_value(),
                  (topo->portMask(n) >> router::index(p)) & 1u);
        if (!nb) continue;
        const auto back = topo->neighbor(*nb, router::opposite(p));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, n);
      }
    }
  }
}

TEST(TopologyContractTest, EveryRibRoutesToItsDestinationOnBothOrders) {
  // routePath walks the adjacency with the router's own route/consumeHop
  // logic and throws if the route leaves the links, loops, or ends at the
  // wrong node - so this is the residual-RIB-zero property in one sweep.
  for (const auto& topo : sampleTopologies()) {
    SCOPED_TRACE(topo->describe());
    for (auto algorithm :
         {router::RoutingAlgorithm::XY, router::RoutingAlgorithm::YX}) {
      for (int s = 0; s < topo->nodes(); ++s) {
        for (int d = 0; d < topo->nodes(); ++d) {
          const NodeId src = topo->nodeAt(s), dst = topo->nodeAt(d);
          const auto path = topo->routePath(src, dst, algorithm);
          EXPECT_EQ(path.empty(), s == d);
          EXPECT_EQ(topo->hops(src, dst),
                    static_cast<int>(topo->routePath(src, dst).size()) + 1);
        }
      }
    }
  }
}

TEST(TopologyContractTest, WrapRoutesFollowTheVcContract) {
  // The deadlock-freedom contract on wrapping topologies: numVCs == 1
  // routes stay inside the mesh/line sub-network (no wrap link is ever a
  // channel dependency), and numVCs >= 2 routes are minimal - at most
  // half of each ring per axis, so the escape VC's wrap classes apply.
  for (const auto& topo :
       {std::shared_ptr<const Topology>(std::make_shared<TorusTopology>(5, 4)),
        std::shared_ptr<const Topology>(std::make_shared<RingTopology>(8))}) {
    SCOPED_TRACE(topo->describe());
    const Extent ext = topo->extent();
    for (int s = 0; s < topo->nodes(); ++s) {
      for (int d = 0; d < topo->nodes(); ++d) {
        const NodeId src = topo->nodeAt(s), dst = topo->nodeAt(d);
        // numVCs == 1: every hop moves strictly toward the destination
        // coordinate, so the wrap edges (x: W-1 <-> 0, y: H-1 <-> 0) are
        // never crossed.
        NodeId at = src;
        for (const LinkId& hop : topo->routePath(src, dst)) {
          EXPECT_EQ(hop.from, at);
          const NodeId next = *topo->neighbor(at, hop.port);
          EXPECT_LE(std::abs(next.x - at.x), 1) << "crossed the X wrap";
          EXPECT_LE(std::abs(next.y - at.y), 1) << "crossed the Y wrap";
          at = next;
        }
        EXPECT_EQ(at, dst);
        // numVCs == 2: minimal per axis.
        const router::Rib r = topo->ribFor(src, dst, 2);
        EXPECT_LE(std::abs(r.dx), ext.width / 2);
        EXPECT_LE(std::abs(r.dy), ext.height / 2);
        EXPECT_EQ(static_cast<int>(topo->routePath(src, dst, router::RoutingAlgorithm::XY, 2).size()),
                  std::abs(r.dx) + std::abs(r.dy));
      }
    }
  }
}

TEST(MinimalRingOffsetTest, PicksShorterDirectionPreferringNonWrapTies) {
  EXPECT_EQ(minimalRingOffset(0, 3, 8), 3);
  EXPECT_EQ(minimalRingOffset(3, 0, 8), -3);
  EXPECT_EQ(minimalRingOffset(0, 5, 8), -3);  // wrap down: 3 hops, not 5
  EXPECT_EQ(minimalRingOffset(5, 0, 8), 3);   // wrap up
  EXPECT_EQ(minimalRingOffset(1, 7, 8), -2);  // minimal now crosses 0 freely
  EXPECT_EQ(minimalRingOffset(7, 1, 8), 2);
  EXPECT_EQ(minimalRingOffset(0, 4, 8), 4);   // tie: prefer non-wrapping
  EXPECT_EQ(minimalRingOffset(4, 0, 8), -4);
  EXPECT_EQ(minimalRingOffset(2, 2, 8), 0);
}

TEST(TopologyDescribeTest, StableNamesAndFactory) {
  EXPECT_EQ(MeshTopology(4, 4).describe(), "mesh4x4");
  EXPECT_EQ(TorusTopology(8, 8).describe(), "torus8x8");
  EXPECT_EQ(RingTopology(16).describe(), "ring16");
  EXPECT_EQ(makeTopology("mesh", 3, 2)->nodes(), 6);
  EXPECT_EQ(makeTopology("torus", 4, 4)->kind(), "torus");
  EXPECT_EQ(makeTopology("ring", 4, 2)->describe(), "ring8");
  EXPECT_THROW(makeTopology("hypercube", 4, 4), std::invalid_argument);
}

TEST(TopologyContractTest, EveryInstanceStatesItsDeadlockFreedom) {
  for (const auto& topo : sampleTopologies())
    EXPECT_FALSE(topo->deadlockFreedom().empty()) << topo->describe();
}

TEST(NetworkBuildTest, RejectsTopologiesExceedingTheRibRange) {
  NetworkConfig cfg;  // m = 8: per-axis offsets up to 7
  EXPECT_NO_THROW(Network(std::make_shared<MeshTopology>(8, 8), cfg));
  // A 32-node ring needs non-wrapping offsets up to 31, far beyond m=8.
  EXPECT_THROW(Network(std::make_shared<RingTopology>(32), cfg),
               std::invalid_argument);
  cfg.params.m = 12;  // per-axis range 31
  cfg.params.n = 16;  // the header flit must hold the wider RIB
  EXPECT_NO_THROW(Network(std::make_shared<RingTopology>(32), cfg));
}

TEST(NetworkBuildTest, LinkCountMatchesTheAdjacency) {
  NetworkConfig cfg;
  // Mesh W x H: 2*(W*(H-1) + H*(W-1)) directed links.
  EXPECT_EQ(Network(std::make_shared<MeshTopology>(4, 4), cfg).linkCount(),
            48u);
  // Torus W x H: every node drives all four directions.
  EXPECT_EQ(Network(std::make_shared<TorusTopology>(4, 4), cfg).linkCount(),
            64u);
  // Ring N: East + West out of every node.
  EXPECT_EQ(Network(std::make_shared<RingTopology>(8), cfg).linkCount(),
            16u);
}

// All-pairs single-packet delivery: the residual-RIB-zero invariant is
// enforced by every destination NI (healthy() fails otherwise), so this
// checks RIB consumption through the actual routers on every topology and
// both simulator kernels.
TEST(NetworkDeliveryTest, AllPairsDeliverWithZeroResidualRib) {
  for (auto kernel : {Simulator::Kernel::Naive, Simulator::Kernel::EventDriven}) {
    for (const auto& topo :
         {makeTopology("mesh", 3, 3), makeTopology("torus", 3, 3),
          makeTopology("ring", 6, 1)}) {
      SCOPED_TRACE(topo->describe() + (kernel == Simulator::Kernel::Naive
                                           ? " naive"
                                           : " event"));
      NetworkConfig cfg;
      cfg.kernel = kernel;
      Network net(topo, cfg);
      std::uint64_t sent = 0;
      for (int s = 0; s < topo->nodes(); ++s) {
        for (int d = 0; d < topo->nodes(); ++d) {
          if (s == d) continue;
          net.ni(topo->nodeAt(s)).send(topo->nodeAt(d), {0xabcu, 0xdefu});
          ++sent;
        }
      }
      ASSERT_TRUE(net.drain(20000));
      EXPECT_TRUE(net.healthy());
      EXPECT_EQ(net.ledger().delivered(), sent);
      EXPECT_EQ(net.unattributedPackets(), 0u);
    }
  }
}

// Saturated drain: flood every NI with pattern traffic far beyond the
// network's capacity, then require a complete drain - a routing deadlock
// would hang the drain, so success demonstrates the non-wrapping numVCs==1
// routing restriction does its job under wormhole backpressure.
void floodAndDrain(const std::shared_ptr<const Topology>& topo,
                   TrafficPattern pattern, Simulator::Kernel kernel) {
  NetworkConfig cfg;
  cfg.kernel = kernel;
  Network net(topo, cfg);
  TrafficConfig traffic;
  traffic.pattern = pattern;
  sim::Xoshiro256 rng(99);
  std::uint64_t sent = 0;
  for (int round = 0; round < 6; ++round) {
    for (int s = 0; s < topo->nodes(); ++s) {
      const NodeId src = topo->nodeAt(s);
      const NodeId dst = destinationFor(pattern, src, *topo, rng, traffic);
      if (dst == src) continue;  // pattern fixed point
      net.ni(src).send(dst, {1u, 2u, 3u, 4u});
      ++sent;
    }
  }
  ASSERT_TRUE(net.drain(60000)) << topo->describe();
  EXPECT_TRUE(net.healthy()) << topo->describe();
  EXPECT_EQ(net.ledger().delivered(), sent);
}

TEST(NetworkDrainTest, TorusDrainsSaturatedUniformAndTransposeBothKernels) {
  for (auto kernel :
       {Simulator::Kernel::Naive, Simulator::Kernel::EventDriven}) {
    floodAndDrain(makeTopology("torus", 4, 4), TrafficPattern::UniformRandom,
                  kernel);
    floodAndDrain(makeTopology("torus", 4, 4), TrafficPattern::Transpose,
                  kernel);
  }
}

TEST(NetworkDrainTest, RingDrainsSaturatedUniformAndComplementBothKernels) {
  // Transpose cannot exist on a ring (non-square extent); BitComplement is
  // the long-haul equivalent, pairing node i with node N-1-i.
  for (auto kernel :
       {Simulator::Kernel::Naive, Simulator::Kernel::EventDriven}) {
    floodAndDrain(makeTopology("ring", 8, 1), TrafficPattern::UniformRandom,
                  kernel);
    floodAndDrain(makeTopology("ring", 8, 1), TrafficPattern::BitComplement,
                  kernel);
  }
}

TEST(NetworkDrainTest, GeneratorDrivenTorusAndRingStayHealthyUnderLoad) {
  for (const auto& topo :
       {makeTopology("torus", 4, 4), makeTopology("ring", 8, 1)}) {
    SCOPED_TRACE(topo->describe());
    NetworkConfig cfg;
    Network net(topo, cfg);
    TrafficConfig traffic;
    traffic.pattern = TrafficPattern::UniformRandom;
    traffic.offeredLoad = 0.8;
    traffic.payloadFlits = 3;
    traffic.seed = 11;
    net.attachTraffic(traffic);
    net.run(1500);
    const std::uint64_t mid = net.ledger().delivered();
    net.run(1500);
    EXPECT_TRUE(net.healthy());
    EXPECT_GT(mid, 50u);
    EXPECT_GT(net.ledger().delivered(), mid + 50u);  // still flowing
  }
}

TEST(NetworkDeliveryTest, TorusWrapLinksCarryTrafficWithVCs) {
  // Without virtual channels a torus routes like a mesh (no wrap links);
  // with an escape VC the corner-to-corner route takes the wrap links
  // (1 hop per axis instead of W-1).  Check both the route computation and
  // that the wrap channel actually moves the flits through real routers.
  const auto torus = std::make_shared<TorusTopology>(4, 4);
  EXPECT_EQ(torus->rib(NodeId{0, 0}, NodeId{3, 3}), (router::Rib{3, 3}));
  EXPECT_EQ(torus->ribFor(NodeId{0, 0}, NodeId{3, 3}, 2),
            (router::Rib{-1, -1}));
  EXPECT_EQ(torus->hops(NodeId{0, 0}, NodeId{3, 3}), 7);  // numVCs == 1
  EXPECT_EQ(static_cast<int>(
                torus->routePath(NodeId{0, 0}, NodeId{3, 3},
                                 router::RoutingAlgorithm::XY, 2)
                    .size()),
            2);

  NetworkConfig cfg;
  cfg.params.numVCs = 2;
  Network net(torus, cfg);
  net.ni(NodeId{0, 0}).send(NodeId{3, 3}, {7u});
  ASSERT_TRUE(net.drain(500));
  EXPECT_TRUE(net.healthy());
  // The West wrap link out of (0,0) moved the packet's flits.
  EXPECT_GT(net.linkUtilization(NodeId{0, 0}, Port::West), 0.0);
}

// The acceptance fingerprint: a Network over MeshTopology must be
// cycle-identical to the pre-refactor hard-wired Mesh.  The constants
// below were captured from the seed implementation (commit 1e06a2b) with
// exactly this harness: 8x8, n=16, p=4, payloadFlits=4, seed=2026, 2000
// cycles; both kernels produced identical numbers there too.
struct Golden {
  TrafficPattern pattern;
  double load;
  std::uint64_t queued, delivered, flits;
  double latMean, netMean;
};

TEST(LockstepGoldenTest, MeshTopologyNetworkMatchesPreRefactorMesh) {
  const Golden goldens[] = {
      {TrafficPattern::UniformRandom, 0.05, 1031, 1023, 6138,
       19.066471163245357, 18.885630498533725},
      {TrafficPattern::UniformRandom, 0.20, 4302, 4244, 25464,
       36.793826578699338, 31.726672950047124},
      {TrafficPattern::UniformRandom, 0.50, 5109, 4805, 28830,
       115.77023933402705, 56.147138397502601},
      {TrafficPattern::Transpose, 0.05, 881, 875, 5250, 20.017142857142858,
       19.850285714285715},
      {TrafficPattern::Transpose, 0.20, 3227, 3098, 18588,
       69.399935442220794, 42.611039380245316},
      {TrafficPattern::Transpose, 0.50, 3936, 3707, 22242,
       106.40814674939304, 48.710008092797409},
  };
  for (const Golden& golden : goldens) {
    for (auto kernel :
         {Simulator::Kernel::Naive, Simulator::Kernel::EventDriven}) {
      SCOPED_TRACE(std::string(name(golden.pattern)) + " load " +
                   std::to_string(golden.load));
      NetworkConfig cfg;
      cfg.params.n = 16;
      cfg.params.p = 4;
      cfg.kernel = kernel;
      Network net(std::make_shared<MeshTopology>(8, 8), cfg);
      TrafficConfig traffic;
      traffic.pattern = golden.pattern;
      traffic.offeredLoad = golden.load;
      traffic.payloadFlits = 4;
      traffic.seed = 2026;
      net.attachTraffic(traffic);
      net.run(2000);
      EXPECT_TRUE(net.healthy());
      EXPECT_EQ(net.ledger().queued(), golden.queued);
      EXPECT_EQ(net.ledger().delivered(), golden.delivered);
      EXPECT_EQ(net.ledger().flitsDelivered(), golden.flits);
      EXPECT_DOUBLE_EQ(net.ledger().packetLatency().mean(), golden.latMean);
      EXPECT_DOUBLE_EQ(net.ledger().networkLatency().mean(), golden.netMean);
    }
  }
}

TEST(MeshCompatTest, MeshIsANetworkOverMeshTopology) {
  MeshConfig cfg;
  cfg.shape = MeshShape{3, 3};
  Mesh mesh(cfg);
  EXPECT_EQ(mesh.topology().kind(), "mesh");
  EXPECT_EQ(mesh.topology().describe(), "mesh3x3");
  EXPECT_EQ(mesh.shape().width, 3);
  EXPECT_EQ(mesh.config().shape.height, 3);
  Network& asNetwork = mesh;
  EXPECT_EQ(asNetwork.linkCount(), 24u);
}

}  // namespace
}  // namespace rasoc::noc
