// HLP parity + link fault injection (the paper's data-integrity extension).
#include <gtest/gtest.h>

#include "noc/mesh.hpp"
#include "router/faulty_link.hpp"
#include "sim/simulator.hpp"

namespace rasoc::noc {
namespace {

MeshConfig config(bool parity, double faultRate) {
  MeshConfig cfg;
  cfg.shape = MeshShape{3, 3};
  cfg.params.n = 16;
  cfg.params.p = 4;
  cfg.hlpParity = parity;
  cfg.linkFaultRate = faultRate;
  return cfg;
}

TEST(HlpParityTest, CleanLinksProduceNoParityErrors) {
  Mesh mesh(config(/*parity=*/true, /*faultRate=*/0.0));
  TrafficConfig traffic;
  traffic.offeredLoad = 0.15;
  traffic.payloadFlits = 4;
  traffic.seed = 3;
  mesh.attachTraffic(traffic);
  mesh.run(2000);
  EXPECT_TRUE(mesh.healthy());
  EXPECT_GT(mesh.ledger().delivered(), 50u);
  EXPECT_EQ(mesh.parityErrorsDetected(), 0u);
  EXPECT_EQ(mesh.unattributedPackets(), 0u);
}

TEST(HlpParityTest, ParityCostsOneDataBit) {
  Mesh mesh(config(true, 0.0));
  // Payload words are truncated to n-1 bits under parity.
  mesh.ni(NodeId{0, 0}).send(NodeId{1, 0}, {0xffff});
  ASSERT_TRUE(mesh.drain(300));
  const auto& rx = mesh.ni(NodeId{1, 0}).received();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0][0], 0x7fffu);  // top bit carries parity, not data
  EXPECT_EQ(mesh.ni(NodeId{0, 0}).payloadBits(), 15);
}

TEST(HlpParityTest, SingleBitFlipsAreAlwaysDetected) {
  // Single-bit faults are exactly what even parity catches: every
  // corrupted flit must raise a parity error.
  Mesh mesh(config(true, 0.02));
  TrafficConfig traffic;
  traffic.offeredLoad = 0.2;
  traffic.payloadFlits = 6;
  traffic.seed = 7;
  mesh.attachTraffic(traffic);
  mesh.run(4000);
  EXPECT_GT(mesh.flitsCorrupted(), 20u) << "fault injector must be active";
  // Every corrupted payload flit that reached an NI was flagged.  Some
  // corrupted flits may still be in flight, and a flit can be corrupted on
  // several hops (two flips on the same bit cancel), so compare loosely:
  EXPECT_GT(mesh.parityErrorsDetected(), mesh.flitsCorrupted() / 2);
}

TEST(HlpParityTest, WithoutParityCorruptionGoesUnnoticed) {
  Mesh mesh(config(/*parity=*/false, 0.02));
  TrafficConfig traffic;
  traffic.offeredLoad = 0.2;
  traffic.payloadFlits = 6;
  traffic.seed = 7;
  mesh.attachTraffic(traffic);
  mesh.run(4000);
  EXPECT_GT(mesh.flitsCorrupted(), 20u);
  EXPECT_EQ(mesh.parityErrorsDetected(), 0u);  // nothing checks -> silent
}

TEST(HlpParityTest, FaultFreeRunsAreUnchangedByTheParityOption) {
  auto runOne = [](bool parity) {
    Mesh mesh(config(parity, 0.0));
    TrafficConfig traffic;
    traffic.offeredLoad = 0.1;
    traffic.payloadFlits = 4;
    traffic.seed = 11;
    mesh.attachTraffic(traffic);
    mesh.run(1500);
    return mesh.ledger().delivered();
  };
  // Parity only re-encodes payload bits; timing and delivery are identical.
  EXPECT_EQ(runOne(false), runOne(true));
}

TEST(FaultyLinkTest, ZeroRateNeverCorrupts) {
  Mesh mesh(config(false, 0.0));
  TrafficConfig traffic;
  traffic.offeredLoad = 0.2;
  traffic.seed = 1;
  mesh.attachTraffic(traffic);
  mesh.run(1000);
  EXPECT_EQ(mesh.flitsCorrupted(), 0u);
}

TEST(FaultyLinkTest, CorruptionRateTracksProbability) {
  Mesh mesh(config(false, 0.05));
  TrafficConfig traffic;
  traffic.offeredLoad = 0.3;
  traffic.payloadFlits = 6;
  traffic.seed = 13;
  mesh.attachTraffic(traffic);
  mesh.run(5000);
  // Payload flits are 7 of 8 per packet; corrupted ~5% of payload crossings.
  std::uint64_t payloadCrossings = 0;
  // Approximate payload share of all link flits: 7/8.
  std::uint64_t totalFlits = 0;
  (void)payloadCrossings;
  // Use the aggregate: corrupted / (transferred * 7/8) should be near 5%.
  // Mesh does not expose per-link totals directly; derive from utilization.
  const double cycles = static_cast<double>(mesh.simulator().cycle());
  const double meanUtil = mesh.meanLinkUtilization();
  totalFlits = static_cast<std::uint64_t>(meanUtil * cycles *
                                          static_cast<double>(
                                              mesh.linkCount()));
  ASSERT_GT(totalFlits, 1000u);
  const double rate = static_cast<double>(mesh.flitsCorrupted()) /
                      (static_cast<double>(totalFlits) * 7.0 / 8.0);
  EXPECT_NEAR(rate, 0.05, 0.02);
}

TEST(FaultyLinkTest, InvalidConfigThrows) {
  router::ChannelWires a, b;
  EXPECT_THROW(router::FaultyLink("f", a, b, 0, 0.1, 1),
               std::invalid_argument);
  EXPECT_THROW(router::FaultyLink("f", a, b, 16, 1.5, 1),
               std::invalid_argument);
}

TEST(FaultyLinkTest, HeadersAreNeverCorrupted) {
  // Run a fault-heavy mesh and require zero misroutes/misdeliveries: the
  // payload-only fault model leaves RIBs intact, so routing stays correct.
  Mesh mesh(config(false, 0.3));
  TrafficConfig traffic;
  traffic.offeredLoad = 0.2;
  traffic.seed = 17;
  mesh.attachTraffic(traffic);
  mesh.run(2000);
  for (int i = 0; i < mesh.shape().nodes(); ++i) {
    const NodeId n = mesh.shape().nodeAt(i);
    EXPECT_FALSE(mesh.router(n).misrouteDetected());
    EXPECT_FALSE(mesh.ni(n).misdeliveryDetected());
  }
}

}  // namespace
}  // namespace rasoc::noc
