// Application mapping: cost model, placements, link-load prediction and
// its validation against the cycle-accurate mesh.
#include "noc/appmap.hpp"

#include <gtest/gtest.h>

#include "noc/mesh.hpp"

namespace rasoc::noc {
namespace {

using router::Port;

CoreGraph pipelineGraph(int stages, double bandwidth) {
  CoreGraph graph;
  for (int i = 0; i < stages; ++i)
    graph.addCore("stage" + std::to_string(i));
  for (int i = 0; i + 1 < stages; ++i) graph.addFlow(i, i + 1, bandwidth);
  return graph;
}

TEST(CoreGraphTest, ValidationCatchesBadFlows) {
  CoreGraph graph;
  graph.addCore("a");
  graph.addCore("b");
  graph.addFlow(0, 1, 0.2);
  EXPECT_NO_THROW(graph.validate());
  graph.addFlow(0, 0, 0.1);
  EXPECT_THROW(graph.validate(), std::invalid_argument);
  graph.flows.back() = CoreGraph::Flow{0, 5, 0.1};
  EXPECT_THROW(graph.validate(), std::invalid_argument);
  graph.flows.back() = CoreGraph::Flow{0, 1, 1.5};
  EXPECT_THROW(graph.validate(), std::invalid_argument);
}

TEST(CoreGraphTest, TrafficOfSumsBothDirections) {
  CoreGraph graph;
  graph.addCore("a");
  graph.addCore("b");
  graph.addCore("c");
  graph.addFlow(0, 1, 0.2);
  graph.addFlow(2, 0, 0.3);
  EXPECT_DOUBLE_EQ(graph.trafficOf(0), 0.5);
  EXPECT_DOUBLE_EQ(graph.trafficOf(1), 0.2);
  EXPECT_DOUBLE_EQ(graph.trafficOf(2), 0.3);
}

TEST(MapperTest, XyPathFollowsXThenY) {
  const auto path = Mapper::xyPath(NodeId{0, 0}, NodeId{2, 1});
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], (LinkId{NodeId{0, 0}, Port::East}));
  EXPECT_EQ(path[1], (LinkId{NodeId{1, 0}, Port::East}));
  EXPECT_EQ(path[2], (LinkId{NodeId{2, 0}, Port::North}));
  EXPECT_TRUE(Mapper::xyPath(NodeId{1, 1}, NodeId{1, 1}).empty());
}

TEST(MapperTest, EvaluateComputesHopBandwidthExactly) {
  Mapper mapper(MeshShape{4, 4});
  CoreGraph graph = pipelineGraph(3, 0.25);
  // Place along a row: each flow travels 1 hop (xyHops counts dst router
  // too, so 2 each).
  const MappingResult result = mapper.evaluate(
      graph, {NodeId{0, 0}, NodeId{1, 0}, NodeId{2, 0}});
  EXPECT_DOUBLE_EQ(result.hopBandwidth, 2 * 0.25 * 2.0);
  EXPECT_DOUBLE_EQ(result.maxLinkLoad, 0.25);
  EXPECT_EQ(result.linkLoads.size(), 2u);
}

TEST(MapperTest, EvaluateRejectsOverlapsAndOffMesh) {
  Mapper mapper(MeshShape{2, 2});
  CoreGraph graph = pipelineGraph(2, 0.1);
  EXPECT_THROW(mapper.evaluate(graph, {NodeId{0, 0}, NodeId{0, 0}}),
               std::invalid_argument);
  EXPECT_THROW(mapper.evaluate(graph, {NodeId{0, 0}, NodeId{5, 0}}),
               std::invalid_argument);
  EXPECT_THROW(mapper.evaluate(graph, {NodeId{0, 0}}),
               std::invalid_argument);
}

TEST(MapperTest, LinkLoadsAccumulateSharedSegments) {
  Mapper mapper(MeshShape{4, 1});
  CoreGraph graph;
  graph.addCore("a");
  graph.addCore("b");
  graph.addCore("c");
  graph.addFlow(0, 2, 0.2);  // a -> c crosses b's link
  graph.addFlow(1, 2, 0.3);  // b -> c
  const MappingResult result = mapper.evaluate(
      graph, {NodeId{0, 0}, NodeId{1, 0}, NodeId{2, 0}});
  EXPECT_DOUBLE_EQ(
      result.linkLoads.at(LinkId{NodeId{1, 0}, Port::East}), 0.5);
  EXPECT_DOUBLE_EQ(result.maxLinkLoad, 0.5);
}

TEST(MapperTest, GreedyKeepsChattyCoresAdjacent) {
  Mapper mapper(MeshShape{4, 4});
  CoreGraph graph = pipelineGraph(4, 0.3);
  const MappingResult greedy = mapper.mapGreedy(graph);
  // Worst case (corners) would be far higher; greedy must do much better
  // than a spread-out placement.
  const MappingResult spread = mapper.evaluate(
      graph, {NodeId{0, 0}, NodeId{3, 0}, NodeId{0, 3}, NodeId{3, 3}});
  EXPECT_LT(greedy.hopBandwidth, spread.hopBandwidth);
}

TEST(MapperTest, AnnealingNeverWorsensTheGreedySeed) {
  Mapper mapper(MeshShape{4, 4}, /*seed=*/5);
  CoreGraph graph;
  for (int i = 0; i < 8; ++i) graph.addCore("c" + std::to_string(i));
  // A ring of flows plus two chords.
  for (int i = 0; i < 8; ++i) graph.addFlow(i, (i + 1) % 8, 0.1);
  graph.addFlow(0, 4, 0.2);
  graph.addFlow(2, 6, 0.2);
  const MappingResult greedy = mapper.mapGreedy(graph);
  const MappingResult annealed = mapper.mapAnnealed(graph, 3000);
  EXPECT_LE(annealed.hopBandwidth, greedy.hopBandwidth);
}

TEST(MapperTest, PipelinePlacementReachesTheOptimum) {
  // A 4-stage pipeline on a 2x2 mesh has an optimal cost of
  // 3 flows x bw x 2 hops; annealing must find it.
  Mapper mapper(MeshShape{2, 2}, 7);
  CoreGraph graph = pipelineGraph(4, 0.2);
  const MappingResult result = mapper.mapAnnealed(graph, 4000);
  EXPECT_NEAR(result.hopBandwidth, 3 * 0.2 * 2.0, 1e-9);
}

TEST(FlowReplayTest, SimulatedLinkLoadsMatchThePrediction) {
  // The headline validation: predicted per-link loads from the mapper
  // match what the cycle-accurate RASoC mesh actually carries.
  MeshConfig cfg;
  cfg.shape = MeshShape{3, 3};
  cfg.params.n = 16;
  Mesh mesh(cfg);

  CoreGraph graph;
  graph.addCore("dma");
  graph.addCore("cpu");
  graph.addCore("dsp");
  graph.addFlow(0, 1, 0.20);
  graph.addFlow(1, 2, 0.12);

  Mapper mapper(cfg.shape);
  const MappingResult mapping = mapper.evaluate(
      graph, {NodeId{0, 0}, NodeId{1, 0}, NodeId{2, 0}});
  auto replayers = attachFlows(mesh, graph, mapping, /*payloadFlits=*/6,
                               /*seed=*/3);
  ASSERT_EQ(replayers.size(), 2u);
  mesh.run(20000);
  EXPECT_TRUE(mesh.healthy());

  for (const auto& [link, predicted] : mapping.linkLoads) {
    const double measured = mesh.linkUtilization(link.from, link.port);
    EXPECT_NEAR(measured, predicted, 0.05)
        << "link (" << link.from.x << "," << link.from.y << ") "
        << router::name(link.port);
  }
}

TEST(FlowReplayTest, MappingMustCoverEveryCore) {
  MeshConfig cfg;
  cfg.shape = MeshShape{2, 2};
  Mesh mesh(cfg);
  CoreGraph graph = pipelineGraph(3, 0.1);
  MappingResult incomplete;
  incomplete.placement = {NodeId{0, 0}, NodeId{1, 0}};
  EXPECT_THROW(attachFlows(mesh, graph, incomplete), std::invalid_argument);
}

}  // namespace
}  // namespace rasoc::noc
