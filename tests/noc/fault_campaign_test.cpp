// Fault-injection campaigns end to end: plan generation and validation,
// the cycle-level effect of stall and outage windows, exactly-once
// delivery with the reliability protocol enabled across topologies and
// settle kernels, the documented degradation without it, and the watchdog
// naming the wedged link.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "noc/fault.hpp"
#include "noc/network.hpp"
#include "noc/observe.hpp"
#include "noc/topology.hpp"
#include "noc/traffic.hpp"
#include "noc/watchdog.hpp"
#include "telemetry/metrics.hpp"

namespace rasoc::noc {
namespace {

using router::Port;

// Default RouterParams carry 8-bit flits, so the control word (seqBits + 2
// type bits) caps seqBits at 6.
ReliabilityConfig reliabilityOn(int seqBits = 6, int window = 8) {
  ReliabilityConfig r;
  r.enabled = true;
  r.seqBits = seqBits;
  r.window = window;
  r.rtoInitial = 64;
  r.rtoMax = 1024;
  r.nackMinInterval = 16;
  return r;
}

bool sameEvent(const FaultEvent& a, const FaultEvent& b) {
  return a.link.from == b.link.from && a.link.port == b.link.port &&
         a.kind == b.kind && a.start == b.start && a.duration == b.duration &&
         a.rate == b.rate;
}

TEST(FaultPlanTest, CampaignGenerationIsSeedDeterministic) {
  auto topology = makeTopology("torus", 3, 3);
  CampaignConfig cfg;
  cfg.horizon = 2000;
  cfg.corruptRate = 0.02;
  cfg.corruptLinkFraction = 0.5;
  cfg.stallEvents = 3;
  cfg.dropEvents = 3;
  cfg.seed = 77;
  const FaultPlan a = makeFaultPlan(*topology, cfg);
  const FaultPlan b = makeFaultPlan(*topology, cfg);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i)
    EXPECT_TRUE(sameEvent(a.events[i], b.events[i])) << "event " << i;
  EXPECT_EQ(a.count(FaultKind::StuckAck), 3u);
  EXPECT_EQ(a.count(FaultKind::LinkDown), 3u);
  EXPECT_GT(a.count(FaultKind::Corrupt), 0u);
  EXPECT_NO_THROW(a.validate(*topology));

  cfg.seed = 78;
  const FaultPlan c = makeFaultPlan(*topology, cfg);
  bool differs = c.events.size() != a.events.size();
  for (std::size_t i = 0; !differs && i < a.events.size(); ++i)
    differs = !sameEvent(a.events[i], c.events[i]);
  EXPECT_TRUE(differs) << "different seeds must give different campaigns";
}

TEST(FaultPlanTest, ValidateRejectsLinksTheTopologyLacks) {
  auto mesh = makeTopology("mesh", 3, 3);
  FaultPlan plan;
  // (2,0) has no East neighbour on a 3x3 mesh (it would on a torus).
  plan.events.push_back({LinkId{NodeId{2, 0}, Port::East},
                         FaultKind::Corrupt, 0, 100, 0.5});
  EXPECT_THROW(plan.validate(*mesh), std::invalid_argument);
  EXPECT_NO_THROW(plan.validate(*makeTopology("torus", 3, 3)));

  FaultPlan zeroLength;
  zeroLength.events.push_back(
      {LinkId{NodeId{0, 0}, Port::East}, FaultKind::StuckAck, 0, 0, 1.0});
  EXPECT_THROW(zeroLength.validate(*mesh), std::invalid_argument);

  // The Network builder runs the same validation.
  NetworkConfig cfg;
  cfg.faultPlan = plan;
  EXPECT_THROW(Network(mesh, cfg), std::invalid_argument);
}

TEST(FaultPlanTest, AllLinksEnumeratesEveryDirectedLink) {
  auto mesh = makeTopology("mesh", 2, 2);
  const auto links = allLinks(*mesh);
  // 2x2 mesh: each node has two neighbours -> 8 directed links.
  EXPECT_EQ(links.size(), 8u);
  for (const auto& l : links)
    EXPECT_TRUE(mesh->neighbor(l.from, l.port).has_value());
}

TEST(FaultWindowTest, StuckAckWindowDelaysDeliveryUntilItCloses) {
  auto topology = makeTopology("mesh", 2, 1);
  NetworkConfig cfg;
  cfg.faultPlan.events.push_back(
      {LinkId{NodeId{0, 0}, Port::East}, FaultKind::StuckAck, 0, 200, 1.0});
  Network net(topology, cfg);
  net.ni(NodeId{0, 0}).send(NodeId{1, 0}, {0xaa, 0xbb});
  net.run(150);
  EXPECT_EQ(net.ledger().delivered(), 0u)
      << "packet must be parked while the ack is stuck";
  EXPECT_GT(net.faultStallCycles(), 0u);
  ASSERT_TRUE(net.drain(500));
  EXPECT_EQ(net.ledger().delivered(), 1u);
  const auto& rx = net.ni(NodeId{1, 0}).received();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0], (std::vector<std::uint32_t>{0xaa, 0xbb}));
}

TEST(FaultWindowTest, LinkDownTruncatesPacketsWithoutReliability) {
  // An outage opening while a packet is streaming across the link consumes
  // its remaining body flits (framing flits stall instead — dropping a
  // bop/eop would wedge the wormhole state machines), so the receiver sees
  // a truncated payload.
  auto topology = makeTopology("mesh", 2, 1);
  NetworkConfig cfg;
  cfg.faultPlan.events.push_back(
      {LinkId{NodeId{0, 0}, Port::East}, FaultKind::LinkDown, 12, 200, 1.0});
  Network net(topology, cfg);
  std::vector<std::uint32_t> payload;
  for (std::uint32_t i = 0; i < 40; ++i) payload.push_back(0x20 + i);
  net.ni(NodeId{0, 0}).send(NodeId{1, 0}, payload);
  ASSERT_TRUE(net.drain(2000));
  EXPECT_GT(net.flitsDropped(), 0u);
  EXPECT_EQ(net.ledger().delivered(), 1u)
      << "header and source index crossed before the outage";
  const auto& rx = net.ni(NodeId{1, 0}).received();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_LT(rx[0].size(), payload.size()) << "body flits must be missing";
}

TEST(FaultWindowTest, ReliabilityRecoversPacketsLostToAnOutage) {
  auto topology = makeTopology("mesh", 2, 1);
  NetworkConfig cfg;
  cfg.reliability = reliabilityOn();
  // Opens mid-stream: the frame crossing at cycle 20 loses its body flits
  // and fails the receiver checksum; later frames stall behind it until
  // the outage clears at cycle 300.
  cfg.faultPlan.events.push_back(
      {LinkId{NodeId{0, 0}, Port::East}, FaultKind::LinkDown, 20, 280, 1.0});
  Network net(topology, cfg);
  std::vector<std::vector<std::uint32_t>> sent;
  for (std::uint32_t k = 0; k < 5; ++k) {
    std::vector<std::uint32_t> payload;
    for (std::uint32_t i = 0; i < 20; ++i)
      payload.push_back(0x10 * (k + 1) + i);  // nonzero, distinct per packet
    net.ni(NodeId{0, 0}).send(NodeId{1, 0}, payload);
    sent.push_back(std::move(payload));
  }
  net.run(300);
  ASSERT_TRUE(net.drain(20000));
  EXPECT_EQ(net.ledger().delivered(), 5u);
  EXPECT_EQ(net.ni(NodeId{1, 0}).received(), sent)
      << "retransmissions must restore both content and order";
  const ReliabilityStats rs = net.reliabilityStats();
  EXPECT_GT(rs.retransmissions, 0u);
  EXPECT_GT(rs.malformedFrames, 0u)
      << "truncated frames are checksum-rejected, not misparsed";
  EXPECT_EQ(rs.abandoned, 0u);
}

struct MatrixCase {
  const char* topology;
  int width;
  int height;
  sim::Simulator::Kernel kernel;
  int threads;
};

TEST(FaultCampaignTest, ExactlyOnceAcrossTopologiesAndKernels) {
  const MatrixCase cases[] = {
      {"mesh", 3, 3, sim::Simulator::Kernel::EventDriven, 1},
      {"mesh", 3, 3, sim::Simulator::Kernel::ParallelEventDriven, 2},
      {"torus", 3, 3, sim::Simulator::Kernel::EventDriven, 1},
      {"torus", 3, 3, sim::Simulator::Kernel::ParallelEventDriven, 2},
      {"ring", 6, 1, sim::Simulator::Kernel::EventDriven, 1},
      {"ring", 6, 1, sim::Simulator::Kernel::ParallelEventDriven, 2},
  };
  for (const auto& mc : cases) {
    SCOPED_TRACE(std::string(mc.topology) + " threads=" +
                 std::to_string(mc.threads));
    auto topology = makeTopology(mc.topology, mc.width, mc.height);
    CampaignConfig campaign;
    campaign.horizon = 2000;
    campaign.corruptRate = 0.02;
    campaign.corruptLinkFraction = 0.5;
    campaign.stallEvents = 3;
    campaign.dropEvents = 3;
    campaign.minDuration = 16;
    campaign.maxDuration = 64;
    campaign.seed = 0xc0ffee;
    NetworkConfig cfg;
    cfg.kernel = mc.kernel;
    cfg.threads = mc.threads;
    cfg.reliability = reliabilityOn();
    cfg.faultPlan = makeFaultPlan(*topology, campaign);
    Network net(topology, cfg);
    TrafficConfig traffic;
    traffic.offeredLoad = 0.1;
    traffic.payloadFlits = 4;
    traffic.seed = 11;
    net.attachTraffic(traffic);
    net.run(2000);
    ASSERT_TRUE(net.drain(40000)) << "reliable network must drain";
    EXPECT_GT(net.ledger().queued(), 50u);
    EXPECT_EQ(net.ledger().delivered(), net.ledger().queued())
        << "every queued packet exactly once, no losses, no duplicates";
    EXPECT_TRUE(net.healthy());
    EXPECT_GT(net.flitsCorrupted() + net.flitsDropped() +
                  net.faultStallCycles(),
              0u)
        << "the campaign must actually have perturbed the run";
  }
}

TEST(FaultCampaignTest, PayloadIntegrityAcrossSeqWraparoundUnderFaults) {
  // 20 frames per flow through a 4-bit sequence space exercises window
  // wraparound inside the full network, under active corruption.
  auto topology = makeTopology("mesh", 2, 2);
  CampaignConfig campaign;
  campaign.horizon = 4000;
  campaign.corruptRate = 0.05;
  campaign.stallEvents = 2;
  campaign.dropEvents = 2;
  campaign.seed = 5;
  NetworkConfig cfg;
  cfg.reliability = reliabilityOn(/*seqBits=*/4, /*window=*/8);
  // HLP parity catches any single-bit flip per flit, so with reliability
  // enabled every corrupted frame is dropped at the NI and retransmitted —
  // corruption becomes pure latency, never payload damage.  (The additive
  // frame checksum alone can miss two flips that cancel in the sum.)
  cfg.hlpParity = true;
  cfg.faultPlan = makeFaultPlan(*topology, campaign);
  Network net(topology, cfg);

  const int kRounds = 20;
  std::map<int, std::vector<std::vector<std::uint32_t>>> expected;
  for (int k = 0; k < kRounds; ++k)
    for (int s = 0; s < topology->nodes(); ++s)
      for (int d = 0; d < topology->nodes(); ++d) {
        if (s == d) continue;
        const std::vector<std::uint32_t> payload{
            static_cast<std::uint32_t>(0x40 + s),
            static_cast<std::uint32_t>(0x50 + d),
            static_cast<std::uint32_t>(0x60 + k)};
        net.ni(topology->nodeAt(s)).send(topology->nodeAt(d), payload);
        expected[d].push_back(payload);
      }
  ASSERT_TRUE(net.drain(120000));
  EXPECT_EQ(net.ledger().delivered(), net.ledger().queued());
  for (int d = 0; d < topology->nodes(); ++d) {
    auto got = net.ni(topology->nodeAt(d)).received();
    auto want = expected[d];
    ASSERT_EQ(got.size(), want.size()) << "dst " << d;
    // Arrival order across flows is arbitrary; compare as multisets...
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "dst " << d;
    // ...but within one flow the k-tags must arrive in send order.
    for (int s = 0; s < topology->nodes(); ++s) {
      std::vector<std::uint32_t> tags;
      for (const auto& p : net.ni(topology->nodeAt(d)).received())
        if (p.size() == 3 && p[0] == static_cast<std::uint32_t>(0x40 + s))
          tags.push_back(p[2]);
      EXPECT_TRUE(std::is_sorted(tags.begin(), tags.end()))
          << "flow " << s << "->" << d << " reordered";
    }
  }
}

TEST(FaultCampaignTest, DegradationIsObservableWithoutReliability) {
  auto topology = makeTopology("mesh", 2, 2);
  CampaignConfig campaign;
  campaign.horizon = 4000;
  campaign.corruptRate = 0.05;
  campaign.stallEvents = 2;
  campaign.dropEvents = 2;
  campaign.seed = 5;
  NetworkConfig cfg;  // reliability off: the same campaign must do damage
  cfg.faultPlan = makeFaultPlan(*topology, campaign);
  Network net(topology, cfg);

  std::map<int, std::vector<std::vector<std::uint32_t>>> expected;
  for (int k = 0; k < 20; ++k)
    for (int s = 0; s < topology->nodes(); ++s)
      for (int d = 0; d < topology->nodes(); ++d) {
        if (s == d) continue;
        const std::vector<std::uint32_t> payload{
            static_cast<std::uint32_t>(0x40 + s),
            static_cast<std::uint32_t>(0x50 + d),
            static_cast<std::uint32_t>(0x60 + k)};
        net.ni(topology->nodeAt(s)).send(topology->nodeAt(d), payload);
        expected[d].push_back(payload);
      }
  const bool drained = net.drain(120000);
  EXPECT_GT(net.flitsCorrupted() + net.flitsDropped(), 0u);
  bool anomaly = !drained || net.unattributedPackets() > 0;
  for (int d = 0; d < topology->nodes() && !anomaly; ++d) {
    auto got = net.ni(topology->nodeAt(d)).received();
    auto want = expected[d];
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    anomaly = got != want;
  }
  EXPECT_TRUE(anomaly)
      << "an unprotected network must show losses or corrupted payloads";
}

TEST(FaultCampaignTest, WatchdogNamesThePermanentlyStuckLink) {
  auto topology = makeTopology("mesh", 2, 1);
  NetworkConfig cfg;
  cfg.faultPlan.events.push_back({LinkId{NodeId{0, 0}, Port::East},
                                  FaultKind::StuckAck, 0, 1000000, 1.0});
  Network net(topology, cfg);
  Watchdog dog("dog", net.ledger(), 100,
               [&net] { return net.blockedLinkNames(); });
  net.simulator().add(dog);
  net.ni(NodeId{0, 0}).send(NodeId{1, 0}, {0x5});
  net.run(400);
  ASSERT_TRUE(dog.stallDetected());
  const auto& blocked = dog.snapshot().blockedLinks;
  ASSERT_FALSE(blocked.empty());
  EXPECT_NE(std::find(blocked.begin(), blocked.end(), "link(0,0)E"),
            blocked.end())
      << "snapshot must name the wedged link, not just the cycle";
}

TEST(FaultCampaignTest, TelemetryCountsFaultsPerLinkAndInTheReport) {
  auto topology = makeTopology("mesh", 2, 2);
  CampaignConfig campaign;
  campaign.horizon = 1500;
  campaign.corruptRate = 0.1;
  campaign.seed = 9;
  NetworkConfig cfg;
  cfg.reliability = reliabilityOn();
  cfg.faultPlan = makeFaultPlan(*topology, campaign);
  Network net(topology, cfg);
  telemetry::MetricsRegistry registry;
  net.enableTelemetry(registry);
  TrafficConfig traffic;
  traffic.offeredLoad = 0.15;
  traffic.payloadFlits = 4;
  traffic.seed = 13;
  net.attachTraffic(traffic);
  net.run(1500);
  ASSERT_TRUE(net.drain(40000));
  ASSERT_GT(net.flitsCorrupted(), 0u);

  // The per-link counters must account for every corruption the links saw.
  std::uint64_t counted = 0;
  for (const auto& l : allLinks(*topology))
    counted +=
        registry.counterValue(linkMetricPrefix(l) + ".flits_corrupted");
  EXPECT_EQ(counted, net.flitsCorrupted());

  const auto map = faultHeatmap(registry, *topology, net.simulator().cycle());
  EXPECT_GT(map.maxValue(), 0.0);

  const std::string json = buildRunReport("campaign", net).toJson();
  EXPECT_NE(json.find("\"reliability\""), std::string::npos);
  EXPECT_NE(json.find("\"retransmissions\""), std::string::npos);
  EXPECT_NE(json.find("\"fault_stall_cycles\""), std::string::npos);
}

}  // namespace
}  // namespace rasoc::noc
