// Statistical behaviour of the traffic machinery: offered load accuracy,
// per-node seeding independence, and link-utilization accessors.
#include <gtest/gtest.h>

#include <algorithm>

#include "noc/mesh.hpp"

namespace rasoc::noc {
namespace {

TEST(RatesTest, InjectedLoadTracksOfferedLoadWhenUncongested) {
  MeshConfig cfg;
  cfg.shape = MeshShape{4, 4};
  cfg.params.n = 16;
  Mesh mesh(cfg);
  TrafficConfig traffic;
  traffic.offeredLoad = 0.08;
  traffic.payloadFlits = 6;
  traffic.seed = 51;
  mesh.attachTraffic(traffic);
  const std::uint64_t cycles = 12000;
  mesh.run(cycles);
  // Queued flits per cycle per node across the run.
  std::uint64_t queuedFlits = 0;
  for (int i = 0; i < mesh.shape().nodes(); ++i) {
    // Every queued packet is packetFlits() flits.
    queuedFlits += mesh.generator(mesh.shape().nodeAt(i)).packetsGenerated() *
                   static_cast<std::uint64_t>(traffic.packetFlits());
  }
  const double measured = static_cast<double>(queuedFlits) /
                          static_cast<double>(cycles) / 16.0;
  EXPECT_NEAR(measured, traffic.offeredLoad, 0.01);
}

TEST(RatesTest, NodesGenerateIndependently) {
  MeshConfig cfg;
  cfg.shape = MeshShape{3, 3};
  cfg.params.n = 16;
  Mesh mesh(cfg);
  TrafficConfig traffic;
  traffic.offeredLoad = 0.2;
  traffic.seed = 5;
  mesh.attachTraffic(traffic);
  mesh.run(4000);
  // All nodes active, with sane spread (same Bernoulli process, different
  // streams).
  std::uint64_t lo = ~0ull, hi = 0;
  for (int i = 0; i < mesh.shape().nodes(); ++i) {
    const std::uint64_t n =
        mesh.generator(mesh.shape().nodeAt(i)).packetsGenerated();
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  EXPECT_GT(lo, 0u);
  EXPECT_LT(hi, lo * 2);
}

TEST(RatesTest, LinkUtilizationAccessorMatchesTopology) {
  MeshConfig cfg;
  cfg.shape = MeshShape{2, 2};
  Mesh mesh(cfg);
  mesh.ni(NodeId{0, 0}).send(NodeId{1, 0}, {1, 2});
  ASSERT_TRUE(mesh.drain(200));
  EXPECT_GT(mesh.linkUtilization(NodeId{0, 0}, router::Port::East), 0.0);
  EXPECT_EQ(mesh.linkUtilization(NodeId{1, 0}, router::Port::West), 0.0);
  // Dangling edge links do not exist.
  EXPECT_THROW(mesh.linkUtilization(NodeId{1, 0}, router::Port::East),
               std::out_of_range);
  EXPECT_THROW(mesh.linkUtilization(NodeId{0, 0}, router::Port::South),
               std::out_of_range);
  // Local "links" are NI connections, not Link modules.
  EXPECT_THROW(mesh.linkUtilization(NodeId{0, 0}, router::Port::Local),
               std::out_of_range);
}

TEST(RatesTest, GeneratorBackpressureSkipsWhenQueueIsFull) {
  MeshConfig cfg;
  cfg.shape = MeshShape{2, 1};
  cfg.params.p = 1;
  Mesh mesh(cfg);
  TrafficConfig traffic;
  traffic.pattern = TrafficPattern::NearestNeighbor;
  traffic.offeredLoad = 1.0;
  traffic.payloadFlits = 8;
  traffic.maxQueuedPackets = 2;
  traffic.seed = 3;
  mesh.attachTraffic(traffic);
  mesh.run(2000);
  std::uint64_t skipped = 0;
  for (int i = 0; i < 2; ++i)
    skipped += mesh.generator(mesh.shape().nodeAt(i)).injectionsSkipped();
  EXPECT_GT(skipped, 0u);
  // And queues stayed bounded.
  for (int i = 0; i < 2; ++i)
    EXPECT_LE(mesh.ni(mesh.shape().nodeAt(i)).sendQueuePackets(),
              traffic.maxQueuedPackets);
}

}  // namespace
}  // namespace rasoc::noc
