#include "noc/topology.hpp"

#include <gtest/gtest.h>

namespace rasoc::noc {
namespace {

using router::Port;

TEST(MeshShapeTest, IndexingRoundTrips) {
  const MeshShape shape{5, 3};
  for (int i = 0; i < shape.nodes(); ++i) {
    EXPECT_EQ(shape.indexOf(shape.nodeAt(i)), i);
    EXPECT_TRUE(shape.contains(shape.nodeAt(i)));
  }
  EXPECT_FALSE(shape.contains(NodeId{5, 0}));
  EXPECT_FALSE(shape.contains(NodeId{0, 3}));
  EXPECT_FALSE(shape.contains(NodeId{-1, 0}));
}

TEST(MeshShapeTest, ValidationRejectsDegenerateShapes) {
  EXPECT_THROW((MeshShape{0, 4}.validate()), std::invalid_argument);
  EXPECT_THROW((MeshShape{4, 0}.validate()), std::invalid_argument);
  EXPECT_NO_THROW((MeshShape{1, 1}.validate()));
}

TEST(PortMaskTest, CornerRoutersKeepThreePorts) {
  const MeshShape shape{4, 4};
  const unsigned sw = portMaskFor(shape, NodeId{0, 0});
  EXPECT_TRUE(sw & (1u << router::index(Port::Local)));
  EXPECT_TRUE(sw & (1u << router::index(Port::North)));
  EXPECT_TRUE(sw & (1u << router::index(Port::East)));
  EXPECT_FALSE(sw & (1u << router::index(Port::South)));
  EXPECT_FALSE(sw & (1u << router::index(Port::West)));
}

TEST(PortMaskTest, EdgeRoutersKeepFourPorts) {
  const MeshShape shape{4, 4};
  const unsigned mask = portMaskFor(shape, NodeId{2, 0});  // south edge
  int count = 0;
  for (int i = 0; i < router::kNumPorts; ++i) count += (mask >> i) & 1;
  EXPECT_EQ(count, 4);
  EXPECT_FALSE(mask & (1u << router::index(Port::South)));
}

TEST(PortMaskTest, InteriorRoutersKeepAllFive) {
  const MeshShape shape{4, 4};
  EXPECT_EQ(portMaskFor(shape, NodeId{1, 2}), 0x1fu);
}

TEST(PortMaskTest, OneByOneMeshIsLocalOnly) {
  const MeshShape shape{1, 1};
  EXPECT_EQ(portMaskFor(shape, NodeId{0, 0}),
            1u << router::index(Port::Local));
}

TEST(RibBetweenTest, OffsetsMatchCoordinates) {
  EXPECT_EQ(ribBetween(NodeId{0, 0}, NodeId{3, 2}), (router::Rib{3, 2}));
  EXPECT_EQ(ribBetween(NodeId{3, 2}, NodeId{0, 0}), (router::Rib{-3, -2}));
  EXPECT_EQ(ribBetween(NodeId{1, 1}, NodeId{1, 1}), (router::Rib{0, 0}));
}

TEST(XyHopsTest, CountsRouterTraversals) {
  EXPECT_EQ(xyHops(NodeId{0, 0}, NodeId{0, 1}), 2);  // src router + dst router
  EXPECT_EQ(xyHops(NodeId{0, 0}, NodeId{3, 3}), 7);
  EXPECT_EQ(xyHops(NodeId{2, 2}, NodeId{0, 0}), 5);
}

}  // namespace
}  // namespace rasoc::noc
