#include "noc/topology.hpp"

#include <gtest/gtest.h>

namespace rasoc::noc {
namespace {

using router::Port;

TEST(MeshShapeTest, IndexingRoundTrips) {
  const MeshShape shape{5, 3};
  for (int i = 0; i < shape.nodes(); ++i) {
    EXPECT_EQ(shape.indexOf(shape.nodeAt(i)), i);
    EXPECT_TRUE(shape.contains(shape.nodeAt(i)));
  }
  EXPECT_FALSE(shape.contains(NodeId{5, 0}));
  EXPECT_FALSE(shape.contains(NodeId{0, 3}));
  EXPECT_FALSE(shape.contains(NodeId{-1, 0}));
}

TEST(MeshShapeTest, IndexingThrowsInsteadOfWrapping) {
  // indexOf on an off-grid node used to flatten silently (aliasing another
  // node); both lookups must throw instead.
  const MeshShape shape{4, 3};
  EXPECT_THROW(shape.indexOf(NodeId{4, 0}), std::out_of_range);
  EXPECT_THROW(shape.indexOf(NodeId{0, 3}), std::out_of_range);
  EXPECT_THROW(shape.indexOf(NodeId{-1, 2}), std::out_of_range);
  EXPECT_THROW(shape.nodeAt(-1), std::out_of_range);
  EXPECT_THROW(shape.nodeAt(12), std::out_of_range);
  EXPECT_NO_THROW(shape.nodeAt(11));
}

TEST(MeshShapeTest, ValidationRejectsDegenerateShapes) {
  EXPECT_THROW((MeshShape{0, 4}.validate()), std::invalid_argument);
  EXPECT_THROW((MeshShape{4, 0}.validate()), std::invalid_argument);
  EXPECT_NO_THROW((MeshShape{1, 1}.validate()));
}

TEST(PortMaskTest, CornerRoutersKeepThreePorts) {
  const MeshShape shape{4, 4};
  const unsigned sw = portMaskFor(shape, NodeId{0, 0});
  EXPECT_TRUE(sw & (1u << router::index(Port::Local)));
  EXPECT_TRUE(sw & (1u << router::index(Port::North)));
  EXPECT_TRUE(sw & (1u << router::index(Port::East)));
  EXPECT_FALSE(sw & (1u << router::index(Port::South)));
  EXPECT_FALSE(sw & (1u << router::index(Port::West)));
}

TEST(PortMaskTest, EdgeRoutersKeepFourPorts) {
  const MeshShape shape{4, 4};
  const unsigned mask = portMaskFor(shape, NodeId{2, 0});  // south edge
  int count = 0;
  for (int i = 0; i < router::kNumPorts; ++i) count += (mask >> i) & 1;
  EXPECT_EQ(count, 4);
  EXPECT_FALSE(mask & (1u << router::index(Port::South)));
}

TEST(PortMaskTest, InteriorRoutersKeepAllFive) {
  const MeshShape shape{4, 4};
  EXPECT_EQ(portMaskFor(shape, NodeId{1, 2}), 0x1fu);
}

TEST(PortMaskTest, OneByOneMeshIsLocalOnly) {
  const MeshShape shape{1, 1};
  EXPECT_EQ(portMaskFor(shape, NodeId{0, 0}),
            1u << router::index(Port::Local));
}

TEST(RibBetweenTest, OffsetsMatchCoordinates) {
  EXPECT_EQ(ribBetween(NodeId{0, 0}, NodeId{3, 2}), (router::Rib{3, 2}));
  EXPECT_EQ(ribBetween(NodeId{3, 2}, NodeId{0, 0}), (router::Rib{-3, -2}));
  EXPECT_EQ(ribBetween(NodeId{1, 1}, NodeId{1, 1}), (router::Rib{0, 0}));
}

TEST(XyHopsTest, CountsRouterTraversals) {
  EXPECT_EQ(xyHops(NodeId{0, 0}, NodeId{0, 1}), 2);  // src router + dst router
  EXPECT_EQ(xyHops(NodeId{0, 0}, NodeId{3, 3}), 7);
  EXPECT_EQ(xyHops(NodeId{2, 2}, NodeId{0, 0}), 5);
}

TEST(TorusTopologyTest, EveryRouterKeepsAllFivePorts) {
  const TorusTopology torus(4, 4);
  for (int i = 0; i < torus.nodes(); ++i)
    EXPECT_EQ(torus.portMask(torus.nodeAt(i)), 0x1fu);
  // Degenerate single-row torus has no vertical links to keep.
  const TorusTopology flat(4, 1);
  EXPECT_FALSE(flat.portMask(NodeId{0, 0}) &
               (1u << router::index(Port::North)));
  EXPECT_TRUE(flat.portMask(NodeId{0, 0}) &
              (1u << router::index(Port::East)));
}

TEST(TorusTopologyTest, NeighborsWrapAround) {
  const TorusTopology torus(4, 3);
  EXPECT_EQ(torus.neighbor(NodeId{3, 0}, Port::East), (NodeId{0, 0}));
  EXPECT_EQ(torus.neighbor(NodeId{0, 0}, Port::West), (NodeId{3, 0}));
  EXPECT_EQ(torus.neighbor(NodeId{1, 2}, Port::North), (NodeId{1, 0}));
  EXPECT_EQ(torus.neighbor(NodeId{1, 0}, Port::South), (NodeId{1, 2}));
}

TEST(RingTopologyTest, OnlyLocalEastWestArePresent) {
  const RingTopology ring(6);
  for (int i = 0; i < ring.nodes(); ++i) {
    const unsigned mask = ring.portMask(ring.nodeAt(i));
    EXPECT_EQ(mask, (1u << router::index(Port::Local)) |
                        (1u << router::index(Port::East)) |
                        (1u << router::index(Port::West)));
  }
  EXPECT_EQ(ring.neighbor(NodeId{5, 0}, Port::East), (NodeId{0, 0}));
  EXPECT_EQ(ring.neighbor(NodeId{0, 0}, Port::West), (NodeId{5, 0}));
  EXPECT_EQ(ring.neighbor(NodeId{2, 0}, Port::North), std::nullopt);
  EXPECT_EQ(ring.extent().height, 1);
}

TEST(RingTopologyTest, RibIsOneDimensional) {
  const RingTopology ring(8);
  for (int s = 0; s < 8; ++s)
    for (int d = 0; d < 8; ++d)
      EXPECT_EQ(ring.rib(NodeId{s, 0}, NodeId{d, 0}).dy, 0);
  // numVCs == 1 routes never wrap; with an escape VC they go minimal.
  EXPECT_EQ(ring.rib(NodeId{0, 0}, NodeId{5, 0}), (router::Rib{5, 0}));
  EXPECT_EQ(ring.ribFor(NodeId{0, 0}, NodeId{5, 0}, 2),
            (router::Rib{minimalRingOffset(0, 5, 8), 0}));
}

TEST(TopologyRibRangeTest, MaxOffsetsStayWithinOneExtent) {
  EXPECT_EQ(MeshTopology(8, 8).maxRibOffset(), 7);
  // Non-wrapping torus routes (numVCs == 1) match the mesh offset range.
  EXPECT_LE(TorusTopology(8, 8).maxRibOffset(), 7);
  // A ring's worst non-wrapping route spans the whole ring.
  EXPECT_EQ(RingTopology(8).maxRibOffset(), 7);
}

}  // namespace
}  // namespace rasoc::noc
