// XY vs YX routing at the network level: both orders deliver correctly and
// stay deadlock-free; dimension order redistributes which links carry a
// given traffic pattern.
#include <gtest/gtest.h>

#include "noc/mesh.hpp"

namespace rasoc::noc {
namespace {

using router::Port;
using router::RoutingAlgorithm;

MeshConfig config(RoutingAlgorithm routing) {
  MeshConfig cfg;
  cfg.shape = MeshShape{4, 4};
  cfg.params.n = 16;
  cfg.params.p = 4;
  cfg.params.routing = routing;
  return cfg;
}

TEST(RoutingTest, YxDeliversAllPairs) {
  Mesh mesh(config(RoutingAlgorithm::YX));
  const MeshShape shape = mesh.shape();
  int sent = 0;
  for (int s = 0; s < shape.nodes(); ++s) {
    for (int d = 0; d < shape.nodes(); ++d) {
      if (s == d) continue;
      mesh.ni(shape.nodeAt(s)).send(shape.nodeAt(d),
                                    {static_cast<std::uint32_t>(s)});
      ++sent;
    }
  }
  ASSERT_TRUE(mesh.drain(10000));
  EXPECT_TRUE(mesh.healthy());
  EXPECT_EQ(mesh.ledger().delivered(), static_cast<std::uint64_t>(sent));
}

TEST(RoutingTest, YxSaturationStaysDeadlockFree) {
  Mesh mesh(config(RoutingAlgorithm::YX));
  TrafficConfig traffic;
  traffic.offeredLoad = 1.0;
  traffic.payloadFlits = 4;
  traffic.seed = 5;
  mesh.attachTraffic(traffic);
  mesh.run(1500);
  const std::uint64_t mid = mesh.ledger().delivered();
  mesh.run(1500);
  EXPECT_TRUE(mesh.healthy());
  EXPECT_GT(mesh.ledger().delivered(), mid + 50);
}

TEST(RoutingTest, DimensionOrderMovesCornerTurns) {
  // A single (0,0) -> (2,2) packet: XY uses the East links of row 0 then
  // the North links of column 2; YX uses the North links of column 0 then
  // the East links of row 2.
  auto linkFlits = [](RoutingAlgorithm routing, NodeId from, Port port) {
    Mesh mesh(config(routing));
    mesh.ni(NodeId{0, 0}).send(NodeId{2, 2}, {1, 2, 3});
    if (!mesh.drain(500)) ADD_FAILURE() << "drain timeout";
    return mesh.linkUtilization(from, port);
  };
  EXPECT_GT(linkFlits(RoutingAlgorithm::XY, NodeId{0, 0}, Port::East), 0.0);
  EXPECT_EQ(linkFlits(RoutingAlgorithm::XY, NodeId{0, 0}, Port::North), 0.0);
  EXPECT_EQ(linkFlits(RoutingAlgorithm::YX, NodeId{0, 0}, Port::East), 0.0);
  EXPECT_GT(linkFlits(RoutingAlgorithm::YX, NodeId{0, 0}, Port::North), 0.0);
}

TEST(RoutingTest, BothOrdersDeliverTheSameTransposeTrafficVolume) {
  auto runOne = [](RoutingAlgorithm routing) {
    Mesh mesh(config(routing));
    TrafficConfig traffic;
    traffic.pattern = TrafficPattern::Transpose;
    traffic.offeredLoad = 0.15;
    traffic.payloadFlits = 4;
    traffic.seed = 9;
    mesh.attachTraffic(traffic);
    mesh.run(2500);
    return mesh.ledger().delivered();
  };
  const auto xy = runOne(RoutingAlgorithm::XY);
  const auto yx = runOne(RoutingAlgorithm::YX);
  // Transpose is symmetric under dimension exchange: both orders must
  // carry essentially the same volume at moderate load.
  EXPECT_NEAR(static_cast<double>(xy), static_cast<double>(yx),
              0.05 * static_cast<double>(xy));
}

}  // namespace
}  // namespace rasoc::noc
