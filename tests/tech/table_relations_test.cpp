// Validates every relational claim recoverable from the paper's Section 4
// against the elaborated soft-core (the numeric table cells were lost in
// the source text; the relations below are the ground truth we reproduce -
// see DESIGN.md "Calibration notes").
#include <gtest/gtest.h>

#include "softcore/elaborate.hpp"
#include "tech/mapper.hpp"
#include "tech/report.hpp"

namespace rasoc::tech {
namespace {

using router::FifoImpl;
using router::RouterParams;
using softcore::Entity;

RouterParams config(int n, int p, FifoImpl impl) {
  RouterParams params;
  params.n = n;
  params.m = 8;  // the paper's experiments fix m = 8
  params.p = p;
  params.fifoImpl = impl;
  return params;
}

Cost fifoCost(int n, int p, FifoImpl impl) {
  const Flex10keMapper mapper;
  return softcore::elaborateFifo(config(n, p, impl)).totalCost(mapper);
}

Cost routerCost(int n, int p, FifoImpl impl) {
  const Flex10keMapper mapper;
  return softcore::elaborateRouter(config(n, p, impl)).totalCost(mapper);
}

// --- Table 1: buffer costs ---------------------------------------------

TEST(Table1Relations, EabFifoUsesFewerLogicCellsThanFfFifo) {
  for (int n : {8, 16, 32}) {
    for (int p : {2, 4}) {
      EXPECT_LT(fifoCost(n, p, FifoImpl::Eab).lc,
                fifoCost(n, p, FifoImpl::FlipFlop).lc)
          << "n=" << n << " p=" << p;
    }
  }
}

TEST(Table1Relations, FfFifoLcGrowsWithBothWidthAndDepth) {
  EXPECT_LT(fifoCost(8, 2, FifoImpl::FlipFlop).lc,
            fifoCost(16, 2, FifoImpl::FlipFlop).lc);
  EXPECT_LT(fifoCost(16, 2, FifoImpl::FlipFlop).lc,
            fifoCost(32, 2, FifoImpl::FlipFlop).lc);
  EXPECT_LT(fifoCost(8, 2, FifoImpl::FlipFlop).lc,
            fifoCost(8, 4, FifoImpl::FlipFlop).lc);
}

TEST(Table1Relations, EabFifoLcIndependentOfWidth) {
  // "in the EAB-based approach, the numbers of LCs is smaller and increases
  // only with the FIFO depth"
  for (int p : {2, 4}) {
    const int lc8 = fifoCost(8, p, FifoImpl::Eab).lc;
    EXPECT_EQ(lc8, fifoCost(16, p, FifoImpl::Eab).lc);
    EXPECT_EQ(lc8, fifoCost(32, p, FifoImpl::Eab).lc);
  }
  EXPECT_LT(fifoCost(8, 2, FifoImpl::Eab).lc, fifoCost(8, 4, FifoImpl::Eab).lc);
}

TEST(Table1Relations, FfFifoRegistersAreStorageBitsPlusControl) {
  // "the first approach uses flip-flops to implement the memory elements,
  // and the costs increase in the two directions"
  for (int n : {8, 16, 32}) {
    for (int p : {2, 4}) {
      const int regs = fifoCost(n, p, FifoImpl::FlipFlop).reg;
      EXPECT_GE(regs, (n + 2) * p) << "n=" << n << " p=" << p;
      EXPECT_LE(regs, (n + 2) * p + 8) << "n=" << n << " p=" << p;
    }
  }
}

TEST(Table1Relations, EabFifoRegistersIndependentOfWidth) {
  // "registers are used only for the pointers ... their costs are
  // independent of the FIFO width"
  for (int p : {2, 4}) {
    const int reg8 = fifoCost(8, p, FifoImpl::Eab).reg;
    EXPECT_EQ(reg8, fifoCost(16, p, FifoImpl::Eab).reg);
    EXPECT_EQ(reg8, fifoCost(32, p, FifoImpl::Eab).reg);
  }
}

TEST(Table1Relations, OnlyEabFifoUsesMemoryBits) {
  for (int n : {8, 16, 32}) {
    for (int p : {2, 4}) {
      EXPECT_EQ(fifoCost(n, p, FifoImpl::FlipFlop).mem, 0);
      // "the number of memory bits used is (n+2) * p"
      EXPECT_EQ(fifoCost(n, p, FifoImpl::Eab).mem, (n + 2) * p);
    }
  }
}

// --- Table 2: router costs ----------------------------------------------

TEST(Table2Relations, EabRouterUsesFewerLcAndRegThanFfRouter) {
  for (int n : {8, 16, 32}) {
    for (int p : {2, 4}) {
      const Cost eab = routerCost(n, p, FifoImpl::Eab);
      const Cost ff = routerCost(n, p, FifoImpl::FlipFlop);
      EXPECT_LT(eab.lc, ff.lc) << "n=" << n << " p=" << p;
      EXPECT_LT(eab.reg, ff.reg) << "n=" << n << " p=" << p;
    }
  }
}

TEST(Table2Relations, EabRouterRegistersFixedForGivenDepth) {
  // "the number of registers is fixed for a given FIFO depth"
  for (int p : {2, 4}) {
    const int reg8 = routerCost(8, p, FifoImpl::Eab).reg;
    EXPECT_EQ(reg8, routerCost(16, p, FifoImpl::Eab).reg);
    EXPECT_EQ(reg8, routerCost(32, p, FifoImpl::Eab).reg);
  }
}

TEST(Table2Relations, LcGrowsWithChannelWidth) {
  // "the number of LCs grows mainly when the channels become larger due to
  // the multiplexers"
  for (FifoImpl impl : {FifoImpl::FlipFlop, FifoImpl::Eab}) {
    for (int p : {2, 4}) {
      EXPECT_LT(routerCost(8, p, impl).lc, routerCost(16, p, impl).lc);
      EXPECT_LT(routerCost(16, p, impl).lc, routerCost(32, p, impl).lc);
    }
  }
}

TEST(Table2Relations, LargestEabConfigUsesUnder0_7PercentOfDeviceMemory) {
  // The one exact figure in the running text: the 32-bit 4-flit EAB router
  // uses less than 0.7% of the 96-Kbit device (5 FIFOs x 34 bits x 4).
  const Cost cost = routerCost(32, 4, FifoImpl::Eab);
  EXPECT_EQ(cost.mem, 5 * 34 * 4);  // 680 bits
  const double fraction =
      static_cast<double>(cost.mem) / kEpf10k200e.memoryBits;
  EXPECT_LT(fraction, 0.007);
  EXPECT_GT(fraction, 0.006);  // "less than 0.7%" but close to it
}

TEST(Table2Relations, RouterFitsComfortablyInTheTargetDevice) {
  for (int n : {8, 16, 32}) {
    for (int p : {2, 4}) {
      for (FifoImpl impl : {FifoImpl::FlipFlop, FifoImpl::Eab}) {
        const Cost cost = routerCost(n, p, impl);
        EXPECT_LT(cost.lc, kEpf10k200e.logicCells / 3);
        EXPECT_LE(cost.mem, kEpf10k200e.memoryBits);
      }
    }
  }
}

// --- Table 3: per-entity breakdown (32-bit, 4-flit, EAB) -----------------

class Table3Breakdown : public ::testing::Test {
 protected:
  Table3Breakdown() {
    const Flex10keMapper mapper;
    const Entity router =
        softcore::elaborateRouter(config(32, 4, FifoImpl::Eab));
    total_ = router.totalCost(mapper);
    byAcronym_ = router.costByAcronym(mapper);
  }

  double lcShare(const std::string& acronym) const {
    return static_cast<double>(byAcronym_.at(acronym).lc) / total_.lc;
  }
  double regShare(const std::string& acronym) const {
    return static_cast<double>(byAcronym_.at(acronym).reg) / total_.reg;
  }

  Cost total_;
  std::map<std::string, Cost> byAcronym_;
};

TEST_F(Table3Breakdown, OutputDataSwitchDominatesNear49Percent) {
  EXPECT_NEAR(lcShare("ODS"), 0.49, 0.03);
}

TEST_F(Table3Breakdown, OutputControllerNear28Percent) {
  EXPECT_NEAR(lcShare("OC"), 0.28, 0.03);
}

TEST_F(Table3Breakdown, InputBufferNear12PercentLc) {
  EXPECT_NEAR(lcShare("IB"), 0.12, 0.03);
}

TEST_F(Table3Breakdown, InputControllerNear8PercentLc) {
  EXPECT_NEAR(lcShare("IC"), 0.08, 0.03);
}

TEST_F(Table3Breakdown, SmallBlocksNear1PercentLc) {
  EXPECT_LE(lcShare("IRS"), 0.02);
  EXPECT_LE(lcShare("IFC"), 0.02);
  EXPECT_LE(lcShare("ORS"), 0.02);
}

TEST_F(Table3Breakdown, OutputFlowControllerIsWiresOnly) {
  EXPECT_EQ(byAcronym_.at("OFC").lc, 0);
  EXPECT_EQ(byAcronym_.at("OFC").reg, 0);
}

TEST_F(Table3Breakdown, RegisterSplitIsIb44OC56) {
  EXPECT_NEAR(regShare("IB"), 0.44, 0.03);
  EXPECT_NEAR(regShare("OC"), 0.56, 0.03);
}

TEST_F(Table3Breakdown, AllMemoryBitsAreInTheInputBuffers) {
  EXPECT_EQ(byAcronym_.at("IB").mem, total_.mem);
}

TEST_F(Table3Breakdown, ControllersAreTheOptimizableBlocks) {
  // "the only blocks that could be optimized ... are the controllers,
  // because there is no way to reduce the costs of the switches": switch
  // cost is pure LUT-tree muxing, controller cost carries FSM overhead.
  EXPECT_GT(lcShare("OC") + lcShare("IC"), 0.30);
}

}  // namespace
}  // namespace rasoc::tech
