#include "tech/report.hpp"

#include <gtest/gtest.h>

namespace rasoc::tech {
namespace {

TEST(TableTest, RendersHeadersAndRows) {
  Table table({"config", "LC", "Reg"});
  table.addRow({"8-bit", "100", "20"});
  table.addRow({"16-bit", "200", "36"});
  const std::string text = table.render();
  EXPECT_NE(text.find("config"), std::string::npos);
  EXPECT_NE(text.find("8-bit"), std::string::npos);
  EXPECT_NE(text.find("200"), std::string::npos);
}

TEST(TableTest, RaggedRowThrows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.addRow({"only-one"}), std::invalid_argument);
}

TEST(TableTest, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, ColumnsAreAligned) {
  Table table({"x", "value"});
  table.addRow({"longlonglong", "1"});
  const std::string text = table.render();
  // Each line must contain the second column at a consistent offset; check
  // the header line is padded to at least the widest cell.
  const auto firstNewline = text.find('\n');
  ASSERT_NE(firstNewline, std::string::npos);
  const std::string header = text.substr(0, firstNewline);
  EXPECT_GE(header.size(), std::string("longlonglong  value").size());
}

TEST(PercentTest, FormatsOneDecimal) {
  EXPECT_EQ(percent(1, 2), "50.0%");
  EXPECT_EQ(percent(680, 98304), "0.7%");
  EXPECT_EQ(percent(0, 10), "0.0%");
}

TEST(PercentTest, ZeroDenominatorIsZero) {
  EXPECT_EQ(percent(5, 0), "0.0%");
}

TEST(UtilizationSummaryTest, MentionsDeviceAndResources) {
  const Cost cost{1000, 80, 680};
  const std::string text = utilizationSummary(kEpf10k200e, cost);
  EXPECT_NE(text.find("EPF10K200"), std::string::npos);
  EXPECT_NE(text.find("1000 LC"), std::string::npos);
  EXPECT_NE(text.find("680 Mem"), std::string::npos);
  // 680 / 98304 = 0.69% -> "0.7%": the paper's "less than 0.7%" claim.
  EXPECT_NE(text.find("0.7%"), std::string::npos);
}

}  // namespace
}  // namespace rasoc::tech
