#include "tech/timing.hpp"

#include <gtest/gtest.h>

namespace rasoc::tech {
namespace {

// The three operating-frequency data points Section 4 of the paper reports.

TEST(TimingTest, FfBasedTwoFlitRouterRunsNear64Mhz) {
  TimingModel model;
  EXPECT_NEAR(routerFmaxMhz(model, /*ffBased=*/true, 2), 64.0, 2.0);
}

TEST(TimingTest, FfBasedFourFlitRouterDropsTo56Mhz) {
  // "decreases to 55,8 MHz due to the multiplexer at the outputs of the
  // buffers"
  TimingModel model;
  EXPECT_NEAR(routerFmaxMhz(model, /*ffBased=*/true, 4), 55.8, 2.0);
}

TEST(TimingTest, EabBasedRouterRunsNear56_7Mhz) {
  TimingModel model;
  EXPECT_NEAR(routerFmaxMhz(model, /*ffBased=*/false, 2), 56.7, 2.0);
  EXPECT_NEAR(routerFmaxMhz(model, /*ffBased=*/false, 4), 56.7, 2.0);
}

TEST(TimingTest, FfFasterThanEabAtDepthTwoButNotDepthFour) {
  // The paper's ordering: shallow FF FIFOs beat EABs; deep ones do not.
  TimingModel model;
  EXPECT_GT(routerFmaxMhz(model, true, 2), routerFmaxMhz(model, false, 2));
  EXPECT_LE(routerFmaxMhz(model, true, 4), routerFmaxMhz(model, false, 4));
}

TEST(TimingTest, EabFmaxIndependentOfDepth) {
  TimingModel model;
  for (int p : {1, 2, 4, 8, 16})
    EXPECT_DOUBLE_EQ(routerFmaxMhz(model, false, p),
                     routerFmaxMhz(model, false, 2));
}

TEST(TimingTest, FfFmaxMonotonicallyDecreasesWithDepth) {
  TimingModel model;
  double previous = routerFmaxMhz(model, true, 1);
  for (int p : {2, 4, 8, 16, 32}) {
    const double fmax = routerFmaxMhz(model, true, p);
    EXPECT_LE(fmax, previous) << "depth " << p;
    previous = fmax;
  }
}

TEST(TimingTest, FifoReadLevelsLawForShiftRegister) {
  TimingModel model;
  EXPECT_DOUBLE_EQ(fifoReadLevels(model, true, 1), 0.0);
  EXPECT_DOUBLE_EQ(fifoReadLevels(model, true, 2), 1.0);
  EXPECT_DOUBLE_EQ(fifoReadLevels(model, true, 4), 2.0);
  EXPECT_DOUBLE_EQ(fifoReadLevels(model, true, 5), 3.0);
  EXPECT_DOUBLE_EQ(fifoReadLevels(model, true, 8), 3.0);
}

TEST(TimingTest, InvalidDepthThrows) {
  TimingModel model;
  EXPECT_THROW(fifoReadLevels(model, true, 0), std::invalid_argument);
}

TEST(TimingTest, PeriodAndFmaxAreConsistent) {
  TimingModel model;
  const double levels = 6.0;
  EXPECT_NEAR(model.fmaxMhz(levels) * model.periodNs(levels), 1000.0, 1e-9);
}

}  // namespace
}  // namespace rasoc::tech
