#include "tech/mapper.hpp"

#include <gtest/gtest.h>

namespace rasoc::tech {
namespace {

TEST(MapperTest, MuxLutLawMatchesFigure8) {
  // Paper Figure 8: a 4x1 multiplexer costs three 4-input LUTs per bit.
  EXPECT_EQ(Flex10keMapper::muxLutsPerBit(4), 3);
  EXPECT_EQ(Flex10keMapper::muxLutsPerBit(2), 1);
  EXPECT_EQ(Flex10keMapper::muxLutsPerBit(1), 0);
  EXPECT_EQ(Flex10keMapper::muxLutsPerBit(8), 7);
}

TEST(MapperTest, GateLutLaw) {
  EXPECT_EQ(Flex10keMapper::gateLuts(1), 0);  // a wire
  EXPECT_EQ(Flex10keMapper::gateLuts(2), 1);
  EXPECT_EQ(Flex10keMapper::gateLuts(4), 1);
  EXPECT_EQ(Flex10keMapper::gateLuts(5), 2);   // 4 + 1 extra input
  EXPECT_EQ(Flex10keMapper::gateLuts(7), 2);   // 4 + 3
  EXPECT_EQ(Flex10keMapper::gateLuts(8), 3);   // 4 + 3 + 1
  EXPECT_EQ(Flex10keMapper::gateLuts(10), 3);  // 4 + 3 + 3
}

TEST(MapperTest, MuxCostScalesWithWidthAndCount) {
  Flex10keMapper mapper;
  const Cost one = mapper.map(hw::Mux{4, 8, 1});
  EXPECT_EQ(one.lc, 24);
  EXPECT_EQ(one.reg, 0);
  EXPECT_EQ(one.mem, 0);
  const Cost five = mapper.map(hw::Mux{4, 8, 5});
  EXPECT_EQ(five.lc, 120);
}

TEST(MapperTest, PackedRegistersCostNoCells) {
  Flex10keMapper mapper;
  const Cost packed = mapper.map(hw::Register{8, /*packed=*/true, 1});
  EXPECT_EQ(packed.lc, 0);
  EXPECT_EQ(packed.reg, 8);
  const Cost unpacked = mapper.map(hw::Register{8, /*packed=*/false, 1});
  EXPECT_EQ(unpacked.lc, 8);
  EXPECT_EQ(unpacked.reg, 8);
}

TEST(MapperTest, MemoryCostsBitsOnly) {
  Flex10keMapper mapper;
  const Cost mem = mapper.map(hw::Memory{4, 34, 1});
  EXPECT_EQ(mem.lc, 0);
  EXPECT_EQ(mem.reg, 0);
  EXPECT_EQ(mem.mem, 136);
}

TEST(MapperTest, NetlistCostIsSumOfPrimitives) {
  Flex10keMapper mapper;
  hw::Netlist nl;
  nl.addMux(4, 2);                // 6 LC
  nl.addRegister(3, true);        // 3 regs
  nl.addRegister(2, false);       // 2 LC + 2 regs
  nl.addGate(8);                  // 3 LC
  nl.addMemory(2, 10);            // 20 bits
  const Cost cost = mapper.map(nl);
  EXPECT_EQ(cost.lc, 11);
  EXPECT_EQ(cost.reg, 5);
  EXPECT_EQ(cost.mem, 20);
}

TEST(MapperTest, EabPackingSplitsWideAndDeepMemories) {
  Flex10keMapper mapper;  // EPF10K200E: 4 Kbit EABs, max 16 bits wide
  EXPECT_EQ(mapper.eabsFor(4, 34), 3);    // 34 bits -> 3 slices of <=16
  EXPECT_EQ(mapper.eabsFor(256, 16), 1);  // exactly one full EAB
  EXPECT_EQ(mapper.eabsFor(257, 16), 2);  // depth spill
  EXPECT_EQ(mapper.eabsFor(0, 16), 0);
}

TEST(MapperTest, DeviceDatabaseMatchesPaper) {
  // "a 200-Kgate FPGA with 9,984 LCs and 96 Kbits of RAM included in 24
  // EABs (each one capable to synthesize a 4-Kbit memory)"
  EXPECT_EQ(kEpf10k200e.logicCells, 9984);
  EXPECT_EQ(kEpf10k200e.memoryBits, 96 * 1024);
  EXPECT_EQ(kEpf10k200e.eabs, 24);
  EXPECT_EQ(kEpf10k200e.eabBits, 4096);
}

TEST(MapperTest, CostArithmetic) {
  Cost a{1, 2, 3};
  Cost b{10, 20, 30};
  EXPECT_EQ(a + b, (Cost{11, 22, 33}));
  EXPECT_EQ(a * 3, (Cost{3, 6, 9}));
  a += b;
  EXPECT_EQ(a, (Cost{11, 22, 33}));
}

}  // namespace
}  // namespace rasoc::tech
