#include "femtojava/femtojava.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace rasoc::femtojava {
namespace {

TEST(FemtoJavaTest, PublishedAnchorIsTable4) {
  // "Table 4. Number of LCs for FemtoJava ... 16 bits: 1979"
  EXPECT_EQ(kFemtoJava16.logicCells, 1979);
  EXPECT_TRUE(kFemtoJava16.published);
  EXPECT_FALSE(kFemtoJava8.published);  // reconstructed, see header comment
  EXPECT_LT(kFemtoJava8.logicCells, kFemtoJava16.logicCells);
}

TEST(FemtoJavaTest, ReferenceLookup) {
  EXPECT_EQ(referenceFor(8).logicCells, kFemtoJava8.logicCells);
  EXPECT_EQ(referenceFor(16).logicCells, kFemtoJava16.logicCells);
  EXPECT_THROW(referenceFor(32), std::invalid_argument);
}

TEST(FemtoJavaTest, RouterIsAFractionOfTheProcessorCore) {
  // The paper's qualitative claim: a RASoC router costs a minority share of
  // even a small ASIP core (reported band: 31%-56%; our analytical mapper
  // lands in the same neighbourhood - see EXPERIMENTS.md).
  for (int width : {8, 16}) {
    for (const auto& row : comparisonSweep(width, {2, 4})) {
      EXPECT_GT(row.ratio, 0.25) << "n=" << width;
      EXPECT_LT(row.ratio, 0.80) << "n=" << width;
    }
  }
}

TEST(FemtoJavaTest, EabConfigsAreTheCheapestRatios) {
  const auto rows = comparisonSweep(8, {2, 4});
  double ffMin = 1e9, eabMax = 0;
  for (const auto& row : rows) {
    if (row.params.fifoImpl == router::FifoImpl::FlipFlop)
      ffMin = std::min(ffMin, row.ratio);
    else
      eabMax = std::max(eabMax, row.ratio);
  }
  EXPECT_LT(eabMax, ffMin + 0.25);  // EAB never wildly above FF
}

TEST(FemtoJavaTest, SweepCoversBothImplsAndDepths) {
  const auto rows = comparisonSweep(16, {2, 4});
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& row : rows) {
    EXPECT_EQ(row.femtojavaLc, 1979);
    EXPECT_GT(row.routerLc, 0);
    EXPECT_NEAR(row.ratio,
                static_cast<double>(row.routerLc) / row.femtojavaLc, 1e-12);
  }
}

}  // namespace
}  // namespace rasoc::femtojava
