#include "baseline/crossbar.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace rasoc::baseline {
namespace {

using noc::NodeId;

TEST(CrossbarTest, DisjointTransfersRunInParallel) {
  IdealCrossbar xbar("xbar", noc::MeshShape{4, 1});
  sim::Simulator sim;
  sim.add(xbar);
  sim.reset();
  xbar.send(NodeId{0, 0}, NodeId{1, 0}, 8);
  xbar.send(NodeId{2, 0}, NodeId{3, 0}, 8);
  std::uint64_t cycles = 0;
  while (!xbar.idle() && cycles < 100) {
    sim.step();
    ++cycles;
  }
  EXPECT_EQ(xbar.ledger().delivered(), 2u);
  // Parallel: both finish in ~8 cycles, not ~16.
  EXPECT_LE(cycles, 10u);
}

TEST(CrossbarTest, SameDestinationSerializes) {
  IdealCrossbar xbar("xbar", noc::MeshShape{3, 1});
  sim::Simulator sim;
  sim.add(xbar);
  sim.reset();
  xbar.send(NodeId{0, 0}, NodeId{2, 0}, 8);
  xbar.send(NodeId{1, 0}, NodeId{2, 0}, 8);
  std::uint64_t cycles = 0;
  while (!xbar.idle() && cycles < 100) {
    sim.step();
    ++cycles;
  }
  EXPECT_EQ(xbar.ledger().delivered(), 2u);
  EXPECT_GE(cycles, 16u);  // endpoint contention forces serialization
}

TEST(CrossbarTest, PerSourceFifoOrder) {
  IdealCrossbar xbar("xbar", noc::MeshShape{2, 2});
  sim::Simulator sim;
  sim.add(xbar);
  sim.reset();
  xbar.send(NodeId{0, 0}, NodeId{1, 0}, 2);
  xbar.send(NodeId{0, 0}, NodeId{1, 1}, 2);
  sim.run(50);
  EXPECT_TRUE(xbar.idle());
  EXPECT_EQ(xbar.ledger().delivered(), 2u);
}

TEST(CrossbarTest, TrafficRunsHealthy) {
  IdealCrossbar xbar("xbar", noc::MeshShape{4, 4});
  sim::Simulator sim;
  sim.add(xbar);
  sim.reset();
  noc::TrafficConfig traffic;
  traffic.offeredLoad = 0.4;
  traffic.payloadFlits = 6;
  traffic.seed = 12;
  xbar.attachTraffic(traffic);
  sim.run(3000);
  EXPECT_GT(xbar.ledger().delivered(), 300u);
  // Throughput per node beats what a shared bus could ever do at 16 nodes.
  EXPECT_GT(xbar.ledger().throughputFlitsPerCyclePerNode(3000, 16),
            1.0 / 16.0);
}

TEST(CrossbarTest, InvalidSendsThrow) {
  IdealCrossbar xbar("xbar", noc::MeshShape{2, 2});
  EXPECT_THROW(xbar.send(NodeId{0, 0}, NodeId{0, 0}, 1),
               std::invalid_argument);
  EXPECT_THROW(xbar.send(NodeId{0, 0}, NodeId{5, 5}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace rasoc::baseline
