#include "baseline/spin.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace rasoc::baseline {
namespace {

TEST(SpinTest, ConstructionValidatesTerminalCount) {
  EXPECT_THROW(SpinFatTree("s", 3), std::invalid_argument);
  EXPECT_THROW(SpinFatTree("s", 6), std::invalid_argument);
  EXPECT_THROW(SpinFatTree("s", 128), std::invalid_argument);
  EXPECT_NO_THROW(SpinFatTree("s", 16));
}

TEST(SpinTest, IntraGroupTransferIsTwoLinksDeep) {
  SpinFatTree spin("spin", 16);
  sim::Simulator sim;
  sim.add(spin);
  sim.reset();
  spin.send(0, 1, 8);  // same level-1 group
  sim.run(30);
  EXPECT_EQ(spin.ledger().delivered(), 1u);
  // inject(1) + up-link + down-link cut-through + 8 flits serialization.
  EXPECT_LE(spin.ledger().packetLatency().mean(), 14.0);
}

TEST(SpinTest, CrossGroupTransferCrossesTheTree) {
  SpinFatTree spin("spin", 16);
  sim::Simulator sim;
  sim.add(spin);
  sim.reset();
  spin.send(0, 15, 8);  // different groups: four links
  sim.run(40);
  EXPECT_EQ(spin.ledger().delivered(), 1u);
  const double cross = spin.ledger().packetLatency().mean();
  SpinFatTree spin2("spin2", 16);
  sim::Simulator sim2;
  sim2.add(spin2);
  sim2.reset();
  spin2.send(0, 1, 8);
  sim2.run(40);
  EXPECT_GT(cross, spin2.ledger().packetLatency().mean());
}

TEST(SpinTest, DisjointGroupsTransferInParallel) {
  SpinFatTree spin("spin", 16);
  sim::Simulator sim;
  sim.add(spin);
  sim.reset();
  // Four intra-group transfers, one per group: no shared link.
  spin.send(0, 1, 8);
  spin.send(4, 5, 8);
  spin.send(8, 9, 8);
  spin.send(12, 13, 8);
  sim.run(20);
  EXPECT_EQ(spin.ledger().delivered(), 4u);
  EXPECT_LT(spin.ledger().packetLatency().max(), 16.0);  // no serialization
}

TEST(SpinTest, SameDestinationSerializesOnTheTerminalLink) {
  SpinFatTree spin("spin", 16);
  sim::Simulator sim;
  sim.add(spin);
  sim.reset();
  spin.send(4, 0, 8);
  spin.send(8, 0, 8);
  spin.send(12, 0, 8);
  sim.run(60);
  EXPECT_EQ(spin.ledger().delivered(), 3u);
  // Three 8-flit packets into one terminal: >= 24 cycles of link holding.
  EXPECT_GE(spin.ledger().packetLatency().max(), 24.0);
}

TEST(SpinTest, AdaptiveRootChoiceSpreadsLoad) {
  SpinFatTree spin("spin", 16);
  sim::Simulator sim;
  sim.add(spin);
  sim.reset();
  // Four cross-group packets from the same group: with four roots they
  // should fan out and overlap rather than serialize on one root.
  spin.send(0, 4, 8);
  spin.send(1, 8, 8);
  spin.send(2, 12, 8);
  spin.send(3, 5, 8);
  sim.run(40);
  EXPECT_EQ(spin.ledger().delivered(), 4u);
  EXPECT_LT(spin.ledger().packetLatency().max(), 30.0);
}

TEST(SpinTest, UniformTrafficRunsAndOutperformsSharedMedium) {
  SpinFatTree spin("spin", 16);
  sim::Simulator sim;
  sim.add(spin);
  sim.reset();
  noc::TrafficConfig traffic;
  traffic.offeredLoad = 0.3;
  traffic.payloadFlits = 6;
  traffic.seed = 4;
  spin.attachTraffic(traffic, noc::MeshShape{4, 4});
  sim.run(4000);
  const double throughput =
      spin.ledger().throughputFlitsPerCyclePerNode(4000, 16);
  // Far beyond a shared bus's 1/16 flits/cycle/node ceiling.
  EXPECT_GT(throughput, 0.15);
}

TEST(SpinTest, InvalidSendsThrow) {
  SpinFatTree spin("spin", 16);
  EXPECT_THROW(spin.send(0, 0, 4), std::invalid_argument);
  EXPECT_THROW(spin.send(-1, 3, 4), std::invalid_argument);
  EXPECT_THROW(spin.send(0, 16, 4), std::invalid_argument);
  EXPECT_THROW(spin.send(0, 1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace rasoc::baseline
