// Additional baseline coverage: bus overhead knobs, warmup accounting,
// crossbar scan fairness.
#include <gtest/gtest.h>

#include "baseline/bus.hpp"
#include "baseline/crossbar.hpp"
#include "baseline/spin.hpp"
#include "sim/simulator.hpp"

namespace rasoc::baseline {
namespace {

using noc::NodeId;

TEST(BusMiscTest, OverheadCyclesLengthenEveryTransfer) {
  auto measure = [](int arb, int addr) {
    BusConfig cfg;
    cfg.shape = noc::MeshShape{2, 2};
    cfg.arbitrationCycles = arb;
    cfg.addressCycles = addr;
    SharedBus bus("bus", cfg);
    sim::Simulator sim;
    sim.add(bus);
    sim.reset();
    bus.send(NodeId{0, 0}, NodeId{1, 0}, 4);
    sim.run(40);
    return bus.ledger().packetLatency().mean();
  };
  const double lean = measure(0, 0);
  const double heavy = measure(2, 3);
  EXPECT_NEAR(heavy - lean, 5.0, 1.0);
}

TEST(BusMiscTest, NegativeOverheadRejected) {
  BusConfig cfg;
  cfg.arbitrationCycles = -1;
  EXPECT_THROW(SharedBus("bus", cfg), std::invalid_argument);
}

TEST(BusMiscTest, WarmupExcludesEarlyTraffic) {
  BusConfig cfg;
  cfg.shape = noc::MeshShape{2, 2};
  SharedBus bus("bus", cfg);
  bus.ledger().setWarmupCycles(1000);
  sim::Simulator sim;
  sim.add(bus);
  sim.reset();
  bus.send(NodeId{0, 0}, NodeId{1, 0}, 4);
  sim.run(50);
  EXPECT_EQ(bus.ledger().delivered(), 1u);
  EXPECT_EQ(bus.ledger().packetLatency().count(), 0u);
}

TEST(BusMiscTest, DoubleAttachThrows) {
  BusConfig cfg;
  SharedBus bus("bus", cfg);
  noc::TrafficConfig traffic;
  bus.attachTraffic(traffic);
  EXPECT_THROW(bus.attachTraffic(traffic), std::logic_error);
}

TEST(CrossbarMiscTest, RotatingScanAvoidsPersistentBias) {
  // Two sources permanently competing for one sink: the rotating scan must
  // serve both within a factor of each other.
  IdealCrossbar xbar("xbar", noc::MeshShape{3, 1});
  sim::Simulator sim;
  sim.add(xbar);
  sim.reset();
  noc::TrafficConfig traffic;
  traffic.pattern = noc::TrafficPattern::HotSpot;
  traffic.hotspot = NodeId{2, 0};
  traffic.hotspotFraction = 1.0;
  traffic.offeredLoad = 1.0;
  traffic.payloadFlits = 4;
  traffic.seed = 15;
  xbar.attachTraffic(traffic);
  sim.run(4000);
  EXPECT_GT(xbar.ledger().delivered(), 300u);
  // The sink saturates at 1 flit/cycle = ~1/6 packets per cycle shared by
  // two senders; both must make steady progress (p99 bounded).
  EXPECT_LT(xbar.ledger().packetLatency().percentile(0.99), 200.0);
}

TEST(SpinMiscTest, IdleAndWarmupBehaviour) {
  SpinFatTree spin("spin", 16);
  EXPECT_TRUE(spin.idle());
  spin.ledger().setWarmupCycles(500);
  sim::Simulator sim;
  sim.add(spin);
  sim.reset();
  spin.send(0, 5, 4);
  EXPECT_FALSE(spin.idle());
  sim.run(60);
  EXPECT_TRUE(spin.idle());
  EXPECT_EQ(spin.ledger().delivered(), 1u);
  EXPECT_EQ(spin.ledger().packetLatency().count(), 0u);  // warmup filtered
}

TEST(SpinMiscTest, MismatchedTrafficShapeThrows) {
  SpinFatTree spin("spin", 16);
  noc::TrafficConfig traffic;
  EXPECT_THROW(spin.attachTraffic(traffic, noc::MeshShape{3, 3}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rasoc::baseline
