#include "baseline/bus.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace rasoc::baseline {
namespace {

using noc::NodeId;

BusConfig config(int w = 4, int h = 4) {
  BusConfig cfg;
  cfg.shape = noc::MeshShape{w, h};
  return cfg;
}

TEST(SharedBusTest, SingleTransferTakesOverheadPlusFlits) {
  SharedBus bus("bus", config());
  sim::Simulator sim;
  sim.add(bus);
  sim.reset();
  bus.send(NodeId{0, 0}, NodeId{1, 0}, 6);
  sim.run(30);
  EXPECT_TRUE(bus.idle());
  EXPECT_EQ(bus.ledger().delivered(), 1u);
  // arbitration(1) + address(1) + 6 data cycles, +1 for the grant edge.
  EXPECT_LE(bus.ledger().packetLatency().mean(), 10.0);
  EXPECT_GE(bus.ledger().packetLatency().mean(), 8.0);
}

TEST(SharedBusTest, TransfersAreFullySerialized) {
  SharedBus bus("bus", config());
  sim::Simulator sim;
  sim.add(bus);
  sim.reset();
  // Four disjoint transfers that a crossbar could run in parallel.
  bus.send(NodeId{0, 0}, NodeId{1, 0}, 8);
  bus.send(NodeId{2, 0}, NodeId{3, 0}, 8);
  bus.send(NodeId{0, 1}, NodeId{1, 1}, 8);
  bus.send(NodeId{2, 1}, NodeId{3, 1}, 8);
  std::uint64_t cycles = 0;
  while (!bus.idle() && cycles < 200) {
    sim.step();
    ++cycles;
  }
  EXPECT_EQ(bus.ledger().delivered(), 4u);
  // Serialization: at least 4 x (8 + overhead) cycles.
  EXPECT_GE(cycles, 4u * 10u - 4u);
}

TEST(SharedBusTest, RoundRobinSharesTheBusFairly) {
  SharedBus bus("bus", config(2, 1));
  sim::Simulator sim;
  sim.add(bus);
  sim.reset();
  for (int i = 0; i < 10; ++i) {
    bus.send(NodeId{0, 0}, NodeId{1, 0}, 4);
    bus.send(NodeId{1, 0}, NodeId{0, 0}, 4);
  }
  sim.run(400);
  EXPECT_TRUE(bus.idle());
  EXPECT_EQ(bus.ledger().delivered(), 20u);
  // With fair arbitration both flows see similar mean latency.
  // (Both flows interleave; total span ~20 x 6 cycles.)
  EXPECT_LT(bus.ledger().packetLatency().max(), 150.0);
}

TEST(SharedBusTest, UtilizationNeverExceedsOne) {
  SharedBus bus("bus", config());
  sim::Simulator sim;
  sim.add(bus);
  sim.reset();
  noc::TrafficConfig traffic;
  traffic.offeredLoad = 1.0;
  traffic.payloadFlits = 6;
  traffic.seed = 3;
  bus.attachTraffic(traffic);
  sim.run(2000);
  EXPECT_LE(bus.busUtilization(), 1.0);
  EXPECT_GT(bus.busUtilization(), 0.5);  // saturated shared medium
}

TEST(SharedBusTest, AggregateThroughputCapsNearOneFlitPerCycle) {
  SharedBus bus("bus", config());
  sim::Simulator sim;
  sim.add(bus);
  sim.reset();
  noc::TrafficConfig traffic;
  traffic.offeredLoad = 0.8;
  traffic.payloadFlits = 6;
  traffic.seed = 9;
  bus.attachTraffic(traffic);
  sim.run(4000);
  const double perNode =
      bus.ledger().throughputFlitsPerCyclePerNode(4000, 16);
  // 16 nodes sharing <=1 flit/cycle: <= 1/16 per node (minus overheads).
  EXPECT_LT(perNode, 1.0 / 16.0);
  EXPECT_GT(perNode, 0.02);
}

TEST(SharedBusTest, InvalidSendsThrow) {
  SharedBus bus("bus", config());
  EXPECT_THROW(bus.send(NodeId{0, 0}, NodeId{0, 0}, 4),
               std::invalid_argument);
  EXPECT_THROW(bus.send(NodeId{0, 0}, NodeId{9, 9}, 4),
               std::invalid_argument);
  EXPECT_THROW(bus.send(NodeId{0, 0}, NodeId{1, 0}, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace rasoc::baseline
