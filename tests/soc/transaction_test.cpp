// Transaction-layer tests: memory semantics across the cycle-accurate NoC.
#include "soc/transaction.hpp"

#include <gtest/gtest.h>

#include "noc/mesh.hpp"

namespace rasoc::soc {
namespace {

using noc::NodeId;

struct Platform {
  explicit Platform(int w = 3, int h = 3) {
    noc::MeshConfig cfg;
    cfg.shape = noc::MeshShape{w, h};
    cfg.params.n = 16;
    cfg.params.p = 4;
    mesh = std::make_unique<noc::Mesh>(cfg);
  }

  MemoryTarget& addMemory(NodeId at, int latency = 2,
                          std::size_t words = 64) {
    memories.push_back(std::make_unique<MemoryTarget>(
        "mem", mesh->ni(at), mesh->shape(), latency, words));
    mesh->simulator().add(*memories.back());
    return *memories.back();
  }

  Initiator& addInitiator(NodeId at, int outstanding = 4) {
    initiators.push_back(std::make_unique<Initiator>(
        "cpu", mesh->ni(at), mesh->shape(), at, outstanding));
    mesh->simulator().add(*initiators.back());
    return *initiators.back();
  }

  bool runToCompletion(std::uint64_t maxCycles = 20000) {
    return mesh->simulator().runUntil(
        [&] {
          for (const auto& i : initiators)
            if (!i->done()) return false;
          return true;
        },
        maxCycles);
  }

  std::unique_ptr<noc::Mesh> mesh;
  std::vector<std::unique_ptr<MemoryTarget>> memories;
  std::vector<std::unique_ptr<Initiator>> initiators;
};

TEST(TxnPacketTest, EncodeDecodeRoundTrip) {
  TxnPacket packet{7, TxnKind::Write, 3, 0x2a, 0x1234};
  const TxnPacket decoded = TxnPacket::decode(packet.encode());
  EXPECT_EQ(decoded.txnId, 7u);
  EXPECT_EQ(decoded.kind, TxnKind::Write);
  EXPECT_EQ(decoded.replyTo, 3u);
  EXPECT_EQ(decoded.addr, 0x2au);
  EXPECT_EQ(decoded.data, 0x1234u);
  EXPECT_THROW(TxnPacket::decode({1, 2, 3}), std::invalid_argument);
}

TEST(TransactionTest, WriteThenReadBackOverTheNoc) {
  Platform platform;
  MemoryTarget& mem = platform.addMemory(NodeId{2, 2});
  Initiator& cpu = platform.addInitiator(NodeId{0, 0});
  cpu.queue({true, NodeId{2, 2}, 5, 0xbeef});
  cpu.queue({false, NodeId{2, 2}, 5, 0});
  ASSERT_TRUE(platform.runToCompletion());
  EXPECT_TRUE(platform.mesh->healthy());
  EXPECT_EQ(cpu.completed(), 2u);
  EXPECT_EQ(cpu.dataErrors(), 0u);
  EXPECT_EQ(mem.peek(5), 0xbeefu);
  EXPECT_EQ(mem.readsServed(), 1u);
  EXPECT_EQ(mem.writesServed(), 1u);
}

TEST(TransactionTest, RoundTripLatencyReflectsDistanceAndAccess) {
  Platform platform;
  platform.addMemory(NodeId{1, 0}, /*latency=*/2);
  Initiator& near = platform.addInitiator(NodeId{0, 0}, 1);
  platform.addMemory(NodeId{2, 2}, /*latency=*/2);
  Initiator& far = platform.addInitiator(NodeId{0, 2}, 1);
  for (int i = 0; i < 10; ++i) {
    near.queue({false, NodeId{1, 0}, 0, 0});
    far.queue({false, NodeId{2, 2}, 0, 0});
  }
  ASSERT_TRUE(platform.runToCompletion());
  EXPECT_LT(near.roundTrip().mean(), far.roundTrip().mean());
  EXPECT_GT(near.roundTrip().mean(), 10.0);  // request + response traversal
}

TEST(TransactionTest, ManyInitiatorsShareOneMemoryCorrectly) {
  Platform platform;
  MemoryTarget& mem = platform.addMemory(NodeId{1, 1}, 1, 256);
  std::vector<Initiator*> cpus;
  // Every other node hammers a disjoint address range.
  int range = 0;
  for (int i = 0; i < platform.mesh->shape().nodes(); ++i) {
    const NodeId at = platform.mesh->shape().nodeAt(i);
    if (at == NodeId{1, 1}) continue;
    Initiator& cpu = platform.addInitiator(at, 2);
    const auto base = static_cast<std::uint32_t>(range * 16);
    for (std::uint32_t k = 0; k < 8; ++k) {
      cpu.queue({true, NodeId{1, 1}, base + k,
                 static_cast<std::uint32_t>(range * 100 + k)});
      cpu.queue({false, NodeId{1, 1}, base + k, 0});
    }
    cpus.push_back(&cpu);
    ++range;
  }
  ASSERT_TRUE(platform.runToCompletion(60000));
  EXPECT_TRUE(platform.mesh->healthy());
  for (Initiator* cpu : cpus) {
    EXPECT_EQ(cpu->completed(), 16u);
    EXPECT_EQ(cpu->dataErrors(), 0u);  // read data matches the shadow model
  }
  EXPECT_EQ(mem.writesServed(), 8u * cpus.size());
  EXPECT_EQ(mem.readsServed(), 8u * cpus.size());
}

TEST(TransactionTest, OutstandingWindowLimitsIssue) {
  Platform platform;
  platform.addMemory(NodeId{2, 0}, 20);
  Initiator& narrow = platform.addInitiator(NodeId{0, 0}, 1);
  for (int i = 0; i < 6; ++i) narrow.queue({false, NodeId{2, 0}, 0, 0});
  ASSERT_TRUE(platform.runToCompletion());
  const double serial = narrow.roundTrip().mean();

  Platform platform2;
  platform2.addMemory(NodeId{2, 0}, 20);
  Initiator& wide = platform2.addInitiator(NodeId{0, 0}, 6);
  for (int i = 0; i < 6; ++i) wide.queue({false, NodeId{2, 0}, 0, 0});
  ASSERT_TRUE(platform2.runToCompletion());
  // With pipelined outstanding reads the *total* time shrinks even though
  // per-transaction latency grows (queueing at the single-ported memory).
  EXPECT_GT(wide.roundTrip().mean(), serial * 0.5);
  EXPECT_EQ(wide.completed(), 6u);
}

TEST(TransactionTest, InvalidConstructionThrows) {
  Platform platform;
  EXPECT_THROW(MemoryTarget("m", platform.mesh->ni(NodeId{0, 0}),
                            platform.mesh->shape(), -1, 8),
               std::invalid_argument);
  EXPECT_THROW(MemoryTarget("m", platform.mesh->ni(NodeId{0, 0}),
                            platform.mesh->shape(), 1, 0),
               std::invalid_argument);
  EXPECT_THROW(Initiator("i", platform.mesh->ni(NodeId{0, 0}),
                         platform.mesh->shape(), NodeId{0, 0}, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace rasoc::soc
