// Property-style sweep: the router must deliver packets correctly for
// every combination of (n, m, p, FIFO impl, arbiter) and every legal
// input/output port pair - the "soft-core instances with different sizes"
// claim exercised behaviourally.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>

#include "router/rasoc.hpp"
#include "sim/simulator.hpp"
#include "testbench.hpp"

namespace rasoc::router {
namespace {

using test::FlitSink;
using test::FlitSource;

using SweepParam = std::tuple<int, int, int, FifoImpl>;  // n, m, p, impl

class RouterSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  RouterParams makeParams() const {
    RouterParams params;
    params.n = std::get<0>(GetParam());
    params.m = std::get<1>(GetParam());
    params.p = std::get<2>(GetParam());
    params.fifoImpl = std::get<3>(GetParam());
    return params;
  }
};

// A RIB that the given input port can legally carry toward the target.
// Returns false when no legal packet exists (e.g. Local -> Local).
bool legalRib(Port in, Port out, Rib* rib) {
  if (in == out) return false;
  switch (out) {
    case Port::East: *rib = Rib{1, 0}; break;
    case Port::West: *rib = Rib{-1, 0}; break;
    case Port::North: *rib = Rib{0, 1}; break;
    case Port::South: *rib = Rib{0, -1}; break;
    case Port::Local: *rib = Rib{0, 0}; break;
  }
  // XY routing constraints: a packet entering from North/South has already
  // consumed its X offset, so it may only continue N/S/L; a packet cannot
  // re-enter the direction it came from.
  switch (in) {
    case Port::North:
    case Port::South:
      if (out == Port::East || out == Port::West) return false;
      break;
    default:
      break;
  }
  // Turning back toward the arrival direction (out == in) was already
  // excluded above; out == opposite(in) is the straight-through case and
  // is legal.
  return true;
}

TEST_P(RouterSweep, DeliversAcrossEveryLegalPortPair) {
  const RouterParams params = makeParams();
  for (Port in : kAllPorts) {
    for (Port out : kAllPorts) {
      Rib rib;
      if (!legalRib(in, out, &rib)) continue;
      if (in == Port::Local && out == Port::Local) continue;

      Rasoc router("dut", params);
      FlitSource source("src", router.in(in));
      FlitSink sink("sink", router.out(out));
      sim::Simulator sim;
      sim.add(router);
      sim.add(source);
      sim.add(sink);
      sim.reset();

      const std::vector<std::uint32_t> payload = {0x1u, 0x2u, 0x3u};
      source.queue(makePacket(rib, payload, params));
      sim.runUntil([&] { return sink.received().size() == 4; }, 300);

      ASSERT_EQ(sink.received().size(), 4u)
          << name(in) << "->" << name(out) << " n=" << params.n
          << " m=" << params.m << " p=" << params.p;
      EXPECT_TRUE(sink.received()[0].bop);
      EXPECT_TRUE(sink.received()[3].eop);
      EXPECT_EQ(decodeRib(sink.received()[0].data, params.m), (Rib{0, 0}));
      EXPECT_FALSE(router.misrouteDetected());
      EXPECT_FALSE(router.overflowDetected());
    }
  }
}

TEST_P(RouterSweep, LongPacketSurvivesShallowBuffers) {
  const RouterParams params = makeParams();
  Rasoc router("dut", params);
  FlitSource source("src", router.in(Port::Local));
  FlitSink sink("sink", router.out(Port::East));
  sim::Simulator sim;
  sim.add(router);
  sim.add(source);
  sim.add(sink);
  sim.reset();

  std::vector<std::uint32_t> payload(4 * params.p + 7);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint32_t>(i) & dataMask(params.n);
  source.queue(makePacket(Rib{1, 0}, payload, params));
  sim.runUntil([&] { return sink.received().size() == payload.size() + 1; },
               2000);
  ASSERT_EQ(sink.received().size(), payload.size() + 1);
  for (std::size_t i = 0; i < payload.size(); ++i)
    EXPECT_EQ(sink.received()[i + 1].data, payload[i]);
}

INSTANTIATE_TEST_SUITE_P(
    DesignSpace, RouterSweep,
    ::testing::Values(SweepParam{8, 8, 2, FifoImpl::FlipFlop},
                      SweepParam{8, 8, 2, FifoImpl::Eab},
                      SweepParam{8, 4, 1, FifoImpl::Eab},
                      SweepParam{16, 8, 4, FifoImpl::FlipFlop},
                      SweepParam{16, 8, 4, FifoImpl::Eab},
                      SweepParam{16, 12, 3, FifoImpl::Eab},
                      SweepParam{32, 8, 2, FifoImpl::FlipFlop},
                      SweepParam{32, 8, 4, FifoImpl::Eab},
                      SweepParam{32, 16, 8, FifoImpl::Eab},
                      SweepParam{4, 4, 2, FifoImpl::FlipFlop}),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "m" +
             std::to_string(std::get<1>(info.param)) + "p" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) == FifoImpl::FlipFlop ? "FF" : "EAB");
    });

}  // namespace
}  // namespace rasoc::router
