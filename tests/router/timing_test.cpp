// Cycle-exact protocol timing, captured with the Tracer: the canonical
// RASoC pipeline is two cycles from header acceptance at an input channel
// to the header driving the granted output channel (buffer write ->
// request/arbitration -> switch), then one flit per cycle.
#include <gtest/gtest.h>

#include "router/rasoc.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "testbench.hpp"

namespace rasoc::router {
namespace {

using test::FlitSink;
using test::FlitSource;

TEST(TimingTest, HeaderEmergesTwoCyclesAfterAcceptance) {
  RouterParams params;
  Rasoc dut("dut", params);
  FlitSource src("src", dut.in(Port::Local));
  FlitSink sink("sink", dut.out(Port::East));
  sim::Simulator sim;
  sim.add(dut);
  sim.add(src);
  sim.add(sink);
  sim.reset();

  sim::Tracer tracer;
  tracer.addProbe("in_fire", [&] {
    return dut.in(Port::Local).val.get() && dut.in(Port::Local).ack.get()
               ? 1u
               : 0u;
  });
  tracer.addProbe("in_bop",
                  [&] { return dut.in(Port::Local).flit.bop.get() ? 1u : 0u; });
  tracer.addProbe("out_fire", [&] {
    return dut.out(Port::East).val.get() && dut.out(Port::East).ack.get()
               ? 1u
               : 0u;
  });
  tracer.addProbe("out_bop", [&] {
    return dut.out(Port::East).flit.bop.get() ? 1u : 0u;
  });

  src.queue(makePacket(Rib{1, 0}, {0x11, 0x22}, params));
  for (int cycle = 0; cycle < 12; ++cycle) {
    sim.settle();
    tracer.sample(sim.cycle());
    sim.tick();
  }

  // Find the header-acceptance and header-emission cycles.
  int accepted = -1, emitted = -1;
  for (std::size_t row = 0; row < tracer.sampleCount(); ++row) {
    if (accepted < 0 && tracer.value(row, "in_fire") &&
        tracer.value(row, "in_bop"))
      accepted = static_cast<int>(row);
    if (emitted < 0 && tracer.value(row, "out_fire") &&
        tracer.value(row, "out_bop"))
      emitted = static_cast<int>(row);
  }
  ASSERT_GE(accepted, 0);
  ASSERT_GE(emitted, 0);
  EXPECT_EQ(emitted - accepted, 2)
      << "buffer write -> arbitration -> switch pipeline";
}

TEST(TimingTest, PayloadStreamsBackToBackBehindTheHeader) {
  RouterParams params;
  params.p = 4;
  Rasoc dut("dut", params);
  FlitSource src("src", dut.in(Port::Local));
  FlitSink sink("sink", dut.out(Port::East));
  sim::Simulator sim;
  sim.add(dut);
  sim.add(src);
  sim.add(sink);
  sim.reset();

  sim::Tracer tracer;
  tracer.addProbe("out_fire", [&] {
    return dut.out(Port::East).val.get() && dut.out(Port::East).ack.get()
               ? 1u
               : 0u;
  });

  src.queue(makePacket(Rib{1, 0}, {1, 2, 3, 4, 5}, params));
  for (int cycle = 0; cycle < 16; ++cycle) {
    sim.settle();
    tracer.sample(sim.cycle());
    sim.tick();
  }
  // Six transfer cycles (header + 5 payload) must be consecutive.
  int first = -1, count = 0;
  for (std::size_t row = 0; row < tracer.sampleCount(); ++row) {
    if (tracer.value(row, "out_fire")) {
      if (first < 0) first = static_cast<int>(row);
      ++count;
    }
  }
  ASSERT_EQ(count, 6);
  for (int row = first; row < first + 6; ++row)
    EXPECT_EQ(tracer.value(static_cast<std::size_t>(row), "out_fire"), 1u)
        << "bubble at relative cycle " << row - first;
}

}  // namespace
}  // namespace rasoc::router
