// Randomized property tests for the control blocks: drive thousands of
// random request/handshake patterns and check the invariants that make
// wormhole switching sound.
#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "router/channel.hpp"
#include "router/ic.hpp"
#include "router/oc.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace rasoc::router {
namespace {

// --- OC invariants under random stimulus -----------------------------------

struct OcFuzzRig {
  OcFuzzRig() {
    oc = std::make_unique<OutputController>("oc", Port::East, xbar, outEop,
                                            rokSel, xRd, connected, sel,
                                            ArbiterKind::RoundRobin);
    sim.add(*oc);
    sim.reset();
  }

  std::array<CrossbarWires, kNumPorts> xbar;
  sim::Wire<bool> outEop, rokSel, xRd, connected;
  sim::Wire<int> sel;
  std::unique_ptr<OutputController> oc;
  sim::Simulator sim;
};

TEST(OcFuzzTest, InvariantsHoldUnderRandomRequests) {
  OcFuzzRig rig;
  sim::Xoshiro256 rng(404);
  bool reqNow[kNumPorts] = {};
  bool reqPrev[kNumPorts] = {};
  bool connectedPrev = false;
  int selPrev = 0;

  for (int step = 0; step < 5000; ++step) {
    for (int i = 0; i < kNumPorts; ++i) {
      reqNow[i] = i != index(Port::East) && rng.chance(0.3);
      rig.xbar[static_cast<std::size_t>(i)].req[index(Port::East)].force(
          reqNow[i]);
    }
    rig.outEop.force(rng.chance(0.2));
    rig.rokSel.force(rng.chance(0.7));
    rig.xRd.force(rng.chance(0.7));
    rig.sim.settle();

    // Invariant 1: at most one grant, and only while connected.
    int grants = 0;
    for (int i = 0; i < kNumPorts; ++i)
      grants += rig.xbar[static_cast<std::size_t>(i)]
                        .gnt[index(Port::East)]
                        .get()
                    ? 1
                    : 0;
    ASSERT_LE(grants, 1) << "step " << step;
    ASSERT_EQ(grants == 1, rig.connected.get()) << "step " << step;

    // Invariant 2: the selected port is never the controller's own.
    if (rig.connected.get()) {
      ASSERT_NE(rig.sel.get(), index(Port::East)) << "step " << step;
    }

    // Invariant 3: a new connection implies the port requested it in the
    // cycle before the granting edge.
    if (rig.connected.get() && !connectedPrev) {
      ASSERT_TRUE(reqPrev[rig.sel.get()]) << "step " << step;
    }

    // Invariant 4: the selection never changes while connected (wormhole
    // channel reservation).
    if (rig.connected.get() && connectedPrev) {
      ASSERT_EQ(rig.sel.get(), selPrev) << "step " << step;
    }

    connectedPrev = rig.connected.get();
    selPrev = rig.sel.get();
    for (int i = 0; i < kNumPorts; ++i) reqPrev[i] = reqNow[i];
    rig.sim.tick();
  }
}

TEST(OcFuzzTest, TeardownOnlyOnTrailerTransfer) {
  OcFuzzRig rig;
  sim::Xoshiro256 rng(505);
  bool eopPrev = false, rokPrev = false, rdPrev = false;
  bool connectedPrev = false;
  for (int step = 0; step < 5000; ++step) {
    rig.xbar[0].req[index(Port::East)].force(rng.chance(0.5));
    rig.outEop.force(rng.chance(0.3));
    rig.rokSel.force(rng.chance(0.6));
    rig.xRd.force(rng.chance(0.6));
    rig.sim.settle();
    // A connection can only drop if the previous cycle transferred a
    // trailer (eop & rok & rd all high at the edge).
    if (connectedPrev && !rig.connected.get()) {
      ASSERT_TRUE(eopPrev && rokPrev && rdPrev) << "step " << step;
    }
    connectedPrev = rig.connected.get();
    eopPrev = rig.outEop.get();
    rokPrev = rig.rokSel.get();
    rdPrev = rig.xRd.get();
    rig.sim.tick();
  }
}

// --- IC exhaustive decode ----------------------------------------------------

TEST(IcExhaustiveTest, EveryRibValueDecodesAndRequestsConsistently) {
  RouterParams params;
  params.n = 16;
  params.m = 8;
  FlitWires ibDout;
  sim::Wire<bool> rok;
  CrossbarWires xbar;
  InputController ic("ic", params, Port::West, ibDout, rok, xbar);
  sim::Simulator sim;
  sim.add(ic);
  sim.reset();

  rok.force(true);
  ibDout.bop.force(true);
  for (int dx = -7; dx <= 7; ++dx) {
    for (int dy = -7; dy <= 7; ++dy) {
      const Rib rib{dx, dy};
      ibDout.data.force(encodeRib(rib, params.m));
      sim.settle();

      const Port expected = routeXY(rib);
      int requested = -1;
      for (int o = 0; o < kNumPorts; ++o)
        if (xbar.req[o].get()) requested = o;
      ASSERT_EQ(requested, index(expected)) << "dx=" << dx << " dy=" << dy;

      // Forwarded header must carry the post-hop RIB.
      const Rib updated = decodeRib(xbar.flit.data.get(), params.m);
      ASSERT_EQ(updated, consumeHop(rib, expected))
          << "dx=" << dx << " dy=" << dy;
    }
  }
}

TEST(IcExhaustiveTest, NonHeaderWordsNeverRequestRegardlessOfContent) {
  RouterParams params;
  params.n = 16;
  params.m = 8;
  FlitWires ibDout;
  sim::Wire<bool> rok;
  CrossbarWires xbar;
  InputController ic("ic", params, Port::Local, ibDout, rok, xbar);
  sim::Simulator sim;
  sim.add(ic);
  sim.reset();

  sim::Xoshiro256 rng(33);
  rok.force(true);
  ibDout.bop.force(false);
  for (int i = 0; i < 2000; ++i) {
    ibDout.data.force(static_cast<std::uint32_t>(rng.below(1u << 16)));
    ibDout.eop.force(rng.chance(0.5));
    sim.settle();
    for (int o = 0; o < kNumPorts; ++o)
      ASSERT_FALSE(xbar.req[o].get()) << "iteration " << i;
    // Payload data must pass through bit-exact.
    ASSERT_EQ(xbar.flit.data.get(), ibDout.data.get());
  }
  EXPECT_FALSE(ic.misrouteDetected());
}

}  // namespace
}  // namespace rasoc::router
