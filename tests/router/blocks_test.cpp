// Unit tests for the individual channel blocks, driven through bare wires.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <set>
#include <vector>

#include "router/channel.hpp"
#include "router/ic.hpp"
#include "router/ifc.hpp"
#include "router/irs.hpp"
#include "router/oc.hpp"
#include "router/ods.hpp"
#include "router/ofc.hpp"
#include "router/ors.hpp"
#include "sim/simulator.hpp"

namespace rasoc::router {
namespace {

// --- IFC -----------------------------------------------------------------

TEST(IfcTest, HandshakeTruthTable) {
  sim::Wire<bool> inVal, wok, inAck, wr;
  Ifc ifc("ifc", FlowControl::Handshake, inVal, wok, &inAck, wr);
  sim::Simulator sim;
  sim.add(ifc);
  const bool cases[4][2] = {{false, false}, {false, true},
                            {true, false},  {true, true}};
  for (const auto& c : cases) {
    inVal.force(c[0]);
    wok.force(c[1]);
    sim.settle();
    EXPECT_EQ(inAck.get(), c[0] && c[1]);
    EXPECT_EQ(wr.get(), c[0] && c[1]);
  }
}

TEST(IfcTest, CreditModeWritesUnconditionally) {
  sim::Wire<bool> inVal, wok, wr;
  Ifc ifc("ifc", FlowControl::CreditBased, inVal, wok, nullptr, wr);
  sim::Simulator sim;
  sim.add(ifc);
  inVal.force(true);
  wok.force(false);  // sender credits guarantee space; wok is ignored
  sim.settle();
  EXPECT_TRUE(wr.get());
  inVal.force(false);
  sim.settle();
  EXPECT_FALSE(wr.get());
}

// --- IC --------------------------------------------------------------------

struct IcHarness {
  explicit IcHarness(Port ownPort = Port::Local) {
    RouterParams params;
    params.n = 16;
    params.m = 8;
    ic = std::make_unique<InputController>("ic", params, ownPort, ibDout, rok,
                                           xbar);
    sim.add(*ic);
    sim.reset();
  }

  void present(std::uint32_t data, bool bop, bool eop, bool rokNow = true) {
    ibDout.data.force(data);
    ibDout.bop.force(bop);
    ibDout.eop.force(eop);
    rok.force(rokNow);
    sim.settle();
  }

  int requestedIndex() const {
    for (int o = 0; o < kNumPorts; ++o)
      if (xbar.req[o].get()) return o;
    return -1;
  }

  FlitWires ibDout;
  sim::Wire<bool> rok;
  CrossbarWires xbar;
  std::unique_ptr<InputController> ic;
  sim::Simulator sim;
};

TEST(IcTest, RequestsEastForPositiveDx) {
  IcHarness h;
  h.present(encodeRib(Rib{3, 1}, 8), /*bop=*/true, /*eop=*/false);
  EXPECT_EQ(h.requestedIndex(), index(Port::East));
  EXPECT_TRUE(h.ic->requesting());
  EXPECT_EQ(h.ic->requestedTarget(), Port::East);
}

TEST(IcTest, RequestsEveryDirectionCorrectly) {
  const struct {
    Rib rib;
    Port expected;
  } cases[] = {{{2, 0}, Port::East},  {{-1, 3}, Port::West},
               {{0, 2}, Port::North}, {{0, -1}, Port::South}};
  for (const auto& c : cases) {
    IcHarness h;
    h.present(encodeRib(c.rib, 8), true, false);
    EXPECT_EQ(h.requestedIndex(), index(c.expected));
  }
}

TEST(IcTest, UpdatesHeaderRibForTheHopTaken) {
  IcHarness h;
  h.present(encodeRib(Rib{3, -2}, 8), true, false);
  EXPECT_EQ(decodeRib(h.xbar.flit.data.get(), 8), (Rib{2, -2}));
}

TEST(IcTest, PreservesPayloadBitsInHeader) {
  IcHarness h;  // n = 16: bits above the 8-bit RIB are payload
  const std::uint32_t header = 0x5a00u | encodeRib(Rib{1, 0}, 8);
  h.present(header, true, false);
  EXPECT_EQ(h.xbar.flit.data.get() >> 8, 0x5au);
}

TEST(IcTest, NoRequestWithoutHeader) {
  IcHarness h;
  h.present(encodeRib(Rib{3, 1}, 8), /*bop=*/false, false);
  EXPECT_EQ(h.requestedIndex(), -1);
  EXPECT_FALSE(h.ic->requesting());
}

TEST(IcTest, NoRequestWhenBufferEmpty) {
  IcHarness h;
  h.present(encodeRib(Rib{3, 1}, 8), true, false, /*rokNow=*/false);
  EXPECT_EQ(h.requestedIndex(), -1);
}

TEST(IcTest, PayloadFlitsPassThroughUnmodified) {
  IcHarness h;
  h.present(0x1234u, /*bop=*/false, /*eop=*/true);
  EXPECT_EQ(h.xbar.flit.data.get(), 0x1234u);
  EXPECT_TRUE(h.xbar.flit.eop.get());
  EXPECT_FALSE(h.xbar.flit.bop.get());
}

TEST(IcTest, ZeroOffsetAtLocalPortIsAMisroute) {
  IcHarness h(Port::Local);
  h.present(encodeRib(Rib{0, 0}, 8), true, false);
  EXPECT_TRUE(h.ic->misrouteDetected());
}

TEST(IcTest, DeliveredPacketRoutesToLocalWithoutMisroute) {
  IcHarness h(Port::West);  // arrived travelling East
  h.present(encodeRib(Rib{0, 0}, 8), true, false);
  EXPECT_EQ(h.requestedIndex(), index(Port::Local));
  EXPECT_FALSE(h.ic->misrouteDetected());
}

TEST(IcTest, RokIsForwardedToTheCrossbar) {
  IcHarness h;
  h.present(0, false, false, true);
  EXPECT_TRUE(h.xbar.rok.get());
  h.present(0, false, false, false);
  EXPECT_FALSE(h.xbar.rok.get());
}

// --- IRS -------------------------------------------------------------------

TEST(IrsTest, ForwardsOnlyGrantQualifiedReads) {
  CrossbarWires xbar;
  sim::Wire<bool> rd;
  Irs irs("irs", xbar, rd);
  sim::Simulator sim;
  sim.add(irs);

  sim.settle();
  EXPECT_FALSE(rd.get());

  xbar.rd[2].force(true);  // read command without grant: ignored
  sim.settle();
  EXPECT_FALSE(rd.get());

  xbar.gnt[2].force(true);
  sim.settle();
  EXPECT_TRUE(rd.get());

  xbar.rd[2].force(false);  // grant without read: ignored
  sim.settle();
  EXPECT_FALSE(rd.get());
}

// --- OC / ODS / ORS / OFC ----------------------------------------------------

// Harness for one output channel's control path with directly-driven
// crossbar requests.
struct OcHarness {
  explicit OcHarness(Port own = Port::East,
                     ArbiterKind kind = ArbiterKind::RoundRobin) {
    oc = std::make_unique<OutputController>("oc", own, xbar, outEop, rokSel,
                                            xRd, connected, sel, kind);
    sim.add(*oc);
    sim.reset();
  }

  void request(Port from, bool on = true) {
    xbar[static_cast<std::size_t>(index(from))].req[index(Port::East)].force(
        on);
  }

  std::array<CrossbarWires, kNumPorts> xbar;
  sim::Wire<bool> outEop, rokSel, xRd, connected;
  sim::Wire<int> sel;
  std::unique_ptr<OutputController> oc;
  sim::Simulator sim;
};

TEST(OcTest, GrantsARequestOnTheNextEdge) {
  OcHarness h;
  h.request(Port::Local);
  h.sim.step();
  h.sim.settle();
  EXPECT_TRUE(h.connected.get());
  EXPECT_EQ(h.sel.get(), index(Port::Local));
  EXPECT_TRUE(h.xbar[0].gnt[index(Port::East)].get());
}

TEST(OcTest, HoldsConnectionUntilTrailerTransferred) {
  OcHarness h;
  h.request(Port::Local);
  h.sim.step();
  h.request(Port::Local, false);  // request drops after the header pops
  h.sim.step();
  h.sim.settle();
  EXPECT_TRUE(h.connected.get());  // still connected: wormhole hold
  // Trailer present and read out.
  h.outEop.force(true);
  h.rokSel.force(true);
  h.xRd.force(true);
  h.sim.step();
  h.outEop.force(false);
  h.rokSel.force(false);
  h.xRd.force(false);
  h.sim.settle();
  EXPECT_FALSE(h.connected.get());
}

TEST(OcTest, TrailerAtHeadWithoutReadKeepsConnection) {
  OcHarness h;
  h.request(Port::Local);
  h.sim.step();
  h.outEop.force(true);
  h.rokSel.force(true);
  h.xRd.force(false);  // downstream stalled
  h.sim.step();
  h.sim.settle();
  EXPECT_TRUE(h.connected.get());
}

TEST(OcTest, RoundRobinCyclesThroughCompetingInputs) {
  OcHarness h;
  // All four other ports request persistently; grants must rotate.
  for (Port p : {Port::Local, Port::North, Port::South, Port::West})
    h.request(p);
  std::vector<int> grants;
  for (int round = 0; round < 8; ++round) {
    h.sim.step();  // edge: grant
    h.sim.settle();
    ASSERT_TRUE(h.connected.get());
    grants.push_back(h.sel.get());
    // Deliver a trailer immediately to release the channel.
    h.outEop.force(true);
    h.rokSel.force(true);
    h.xRd.force(true);
    h.sim.step();
    h.outEop.force(false);
    h.rokSel.force(false);
    h.xRd.force(false);
  }
  // Two full rotations over {L, N, S, W} with no repeats within a rotation.
  for (int i = 0; i + 4 <= static_cast<int>(grants.size()); i += 4) {
    std::set<int> rotation(grants.begin() + i, grants.begin() + i + 4);
    EXPECT_EQ(rotation.size(), 4u) << "rotation starting at grant " << i;
  }
  EXPECT_EQ(h.oc->grantsIssued(), 8u);
}

TEST(OcTest, FixedPriorityAlwaysPrefersLowestPort) {
  OcHarness h(Port::East, ArbiterKind::FixedPriority);
  for (Port p : {Port::Local, Port::West})
    h.request(p);
  for (int round = 0; round < 4; ++round) {
    h.sim.step();
    h.sim.settle();
    ASSERT_TRUE(h.connected.get());
    EXPECT_EQ(h.sel.get(), index(Port::Local)) << "round " << round;
    h.outEop.force(true);
    h.rokSel.force(true);
    h.xRd.force(true);
    h.sim.step();
    h.outEop.force(false);
    h.rokSel.force(false);
    h.xRd.force(false);
  }
}

TEST(OcTest, NeverGrantsItsOwnPort) {
  OcHarness h(Port::East);
  // Illegally force a request from East itself plus a legal one from West.
  h.xbar[index(Port::East)].req[index(Port::East)].force(true);
  h.request(Port::West);
  h.sim.step();
  h.sim.settle();
  EXPECT_TRUE(h.connected.get());
  EXPECT_EQ(h.sel.get(), index(Port::West));
}

TEST(OdsTest, MuxesSelectedInputToOutput) {
  std::array<CrossbarWires, kNumPorts> xbar;
  sim::Wire<bool> connected;
  sim::Wire<int> sel;
  FlitWires out;
  Ods ods("ods", xbar, connected, sel, out);
  sim::Simulator sim;
  sim.add(ods);

  xbar[3].flit.data.force(0xabc);
  xbar[3].flit.bop.force(true);
  connected.force(true);
  sel.force(3);
  sim.settle();
  EXPECT_EQ(out.data.get(), 0xabcu);
  EXPECT_TRUE(out.bop.get());

  connected.force(false);
  sim.settle();
  EXPECT_EQ(out.data.get(), 0u);
  EXPECT_FALSE(out.bop.get());
}

TEST(OrsTest, MuxesSelectedRok) {
  std::array<CrossbarWires, kNumPorts> xbar;
  sim::Wire<bool> connected, rokSel;
  sim::Wire<int> sel;
  Ors ors("ors", xbar, connected, sel, rokSel);
  sim::Simulator sim;
  sim.add(ors);

  xbar[1].rok.force(true);
  sel.force(1);
  connected.force(true);
  sim.settle();
  EXPECT_TRUE(rokSel.get());

  sel.force(2);
  sim.settle();
  EXPECT_FALSE(rokSel.get());

  sel.force(1);
  connected.force(false);
  sim.settle();
  EXPECT_FALSE(rokSel.get());
}

TEST(OfcTest, HandshakeConnectsRokToValAndAckToRd) {
  std::array<CrossbarWires, kNumPorts> xbar;
  sim::Wire<bool> rokSel, outAck, outVal, xRd;
  Ofc ofc("ofc", Port::East, rokSel, outAck, outVal, xRd, xbar);
  sim::Simulator sim;
  sim.add(ofc);

  rokSel.force(true);
  outAck.force(true);
  sim.settle();
  EXPECT_TRUE(outVal.get());
  EXPECT_TRUE(xRd.get());
  for (int i = 0; i < kNumPorts; ++i)
    EXPECT_TRUE(xbar[static_cast<std::size_t>(i)].rd[index(Port::East)].get());

  outAck.force(false);
  sim.settle();
  EXPECT_TRUE(outVal.get());  // val independent of ack
  EXPECT_FALSE(xRd.get());
}

}  // namespace
}  // namespace rasoc::router
