#include "router/flit.hpp"

#include <gtest/gtest.h>

namespace rasoc::router {
namespace {

TEST(RibTest, MaxOffsetFollowsFieldWidth) {
  EXPECT_EQ(ribMaxOffset(8), 7);    // 3 magnitude bits per axis
  EXPECT_EQ(ribMaxOffset(4), 1);    // 1 magnitude bit per axis
  EXPECT_EQ(ribMaxOffset(16), 127);
}

TEST(RibTest, EncodeDecodeRoundTripsAllOffsets) {
  const int m = 8;
  const int maxOffset = ribMaxOffset(m);
  for (int dx = -maxOffset; dx <= maxOffset; ++dx) {
    for (int dy = -maxOffset; dy <= maxOffset; ++dy) {
      const Rib rib{dx, dy};
      EXPECT_EQ(decodeRib(encodeRib(rib, m), m), rib)
          << "dx=" << dx << " dy=" << dy;
    }
  }
}

TEST(RibTest, OutOfRangeOffsetThrows) {
  EXPECT_THROW(encodeRib(Rib{8, 0}, 8), std::out_of_range);
  EXPECT_THROW(encodeRib(Rib{0, -8}, 8), std::out_of_range);
  EXPECT_NO_THROW(encodeRib(Rib{7, -7}, 8));
}

TEST(RouteXYTest, XBeforeY) {
  EXPECT_EQ(routeXY(Rib{3, 2}), Port::East);
  EXPECT_EQ(routeXY(Rib{-1, 2}), Port::West);
  EXPECT_EQ(routeXY(Rib{0, 2}), Port::North);
  EXPECT_EQ(routeXY(Rib{0, -4}), Port::South);
  EXPECT_EQ(routeXY(Rib{0, 0}), Port::Local);
}

TEST(RouteYXTest, YBeforeX) {
  EXPECT_EQ(routeYX(Rib{3, 2}), Port::North);
  EXPECT_EQ(routeYX(Rib{3, -2}), Port::South);
  EXPECT_EQ(routeYX(Rib{3, 0}), Port::East);
  EXPECT_EQ(routeYX(Rib{-1, 0}), Port::West);
  EXPECT_EQ(routeYX(Rib{0, 0}), Port::Local);
}

TEST(RouteDispatchTest, SelectsAlgorithm) {
  const Rib rib{2, 3};
  EXPECT_EQ(route(RoutingAlgorithm::XY, rib), Port::East);
  EXPECT_EQ(route(RoutingAlgorithm::YX, rib), Port::North);
  EXPECT_EQ(name(RoutingAlgorithm::XY), "XY");
  EXPECT_EQ(name(RoutingAlgorithm::YX), "YX");
}

TEST(RouteYXTest, WalkAlsoTerminatesInManhattanDistance) {
  for (int dx = -7; dx <= 7; ++dx) {
    for (int dy = -7; dy <= 7; ++dy) {
      Rib rib{dx, dy};
      int hops = 0;
      while (routeYX(rib) != Port::Local) {
        rib = consumeHop(rib, routeYX(rib));
        ASSERT_LE(++hops, 14);
      }
      EXPECT_EQ(hops, std::abs(dx) + std::abs(dy));
    }
  }
}

TEST(ConsumeHopTest, DecrementsTheTravelledAxis) {
  EXPECT_EQ(consumeHop(Rib{3, 2}, Port::East), (Rib{2, 2}));
  EXPECT_EQ(consumeHop(Rib{-3, 2}, Port::West), (Rib{-2, 2}));
  EXPECT_EQ(consumeHop(Rib{0, 2}, Port::North), (Rib{0, 1}));
  EXPECT_EQ(consumeHop(Rib{0, -2}, Port::South), (Rib{0, -1}));
  EXPECT_EQ(consumeHop(Rib{0, 0}, Port::Local), (Rib{0, 0}));
}

TEST(ConsumeHopTest, XYWalkTerminatesAtLocalForAnyOffset) {
  // Property: repeatedly routing and consuming always reaches {0,0} in
  // |dx| + |dy| steps.
  const int m = 8;
  for (int dx = -7; dx <= 7; ++dx) {
    for (int dy = -7; dy <= 7; ++dy) {
      Rib rib{dx, dy};
      int hops = 0;
      while (routeXY(rib) != Port::Local) {
        rib = consumeHop(rib, routeXY(rib));
        ASSERT_LE(++hops, 14) << "dx=" << dx << " dy=" << dy;
        // Every intermediate offset stays encodable.
        ASSERT_NO_THROW(encodeRib(rib, m));
      }
      EXPECT_EQ(hops, std::abs(dx) + std::abs(dy));
    }
  }
}

TEST(UpdateHeaderTest, PreservesPayloadBitsAboveTheRib) {
  const int m = 8;
  const std::uint32_t header = 0xabcd0000u | encodeRib(Rib{3, -2}, m);
  const std::uint32_t updated = updateHeader(header, Rib{2, -2}, m);
  EXPECT_EQ(updated >> m, 0xabcd0000u >> m);
  EXPECT_EQ(decodeRib(updated, m), (Rib{2, -2}));
}

TEST(DataMaskTest, CoversCommonWidths) {
  EXPECT_EQ(dataMask(8), 0xffu);
  EXPECT_EQ(dataMask(16), 0xffffu);
  EXPECT_EQ(dataMask(32), 0xffffffffu);
  EXPECT_EQ(dataMask(2), 0x3u);
}

TEST(MakePacketTest, FramesHeaderAndTrailer) {
  RouterParams params;
  params.n = 16;
  params.m = 8;
  const auto flits = makePacket(Rib{2, 1}, {0x1111, 0x2222, 0x3333}, params);
  ASSERT_EQ(flits.size(), 4u);
  EXPECT_TRUE(flits[0].bop);
  EXPECT_FALSE(flits[0].eop);
  EXPECT_EQ(decodeRib(flits[0].data, params.m), (Rib{2, 1}));
  EXPECT_FALSE(flits[1].bop);
  EXPECT_FALSE(flits[1].eop);
  EXPECT_FALSE(flits[2].eop);
  EXPECT_TRUE(flits[3].eop);
  EXPECT_EQ(flits[3].data, 0x3333u);
}

TEST(MakePacketTest, MasksPayloadToChannelWidth) {
  RouterParams params;
  params.n = 8;
  const auto flits = makePacket(Rib{1, 0}, {0xabcd}, params);
  EXPECT_EQ(flits[1].data, 0xcdu);
}

TEST(MakePacketTest, EmptyPayloadThrows) {
  RouterParams params;
  EXPECT_THROW(makePacket(Rib{1, 0}, {}, params), std::invalid_argument);
}

// Property sweep: round trip over every legal even m.
class RibWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(RibWidthSweep, RoundTripAtExtremes) {
  const int m = GetParam();
  const int maxOffset = ribMaxOffset(m);
  for (const Rib rib : {Rib{maxOffset, -maxOffset}, Rib{-maxOffset, maxOffset},
                        Rib{0, 0}, Rib{1, 0}, Rib{0, -1}}) {
    EXPECT_EQ(decodeRib(encodeRib(rib, m), m), rib) << "m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, RibWidthSweep,
                         ::testing::Values(4, 6, 8, 10, 12, 14, 16));

}  // namespace
}  // namespace rasoc::router
