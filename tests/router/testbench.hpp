// Shared testbench drivers for single-router tests: a handshake flit source
// and a flit sink with a programmable ready pattern.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "sim/module.hpp"

#include "router/channel.hpp"
#include "router/flit.hpp"

namespace rasoc::router::test {

// Streams queued flits into a router input channel using the val/ack
// handshake.
class FlitSource : public sim::Module {
 public:
  FlitSource(std::string name, ChannelWires& ch)
      : Module(std::move(name)), ch_(&ch) {}

  void queue(const std::vector<Flit>& flits) {
    for (const Flit& f : flits) pending_.push_back(f);
  }

  bool done() const { return pending_.empty(); }
  std::uint64_t flitsSent() const { return flitsSent_; }

 protected:
  void onReset() override {
    pending_.clear();
    flitsSent_ = 0;
  }

  void evaluate() override {
    if (pending_.empty()) {
      ch_->val.set(false);
      ch_->flit.data.set(0);
      ch_->flit.bop.set(false);
      ch_->flit.eop.set(false);
      return;
    }
    const Flit& f = pending_.front();
    ch_->val.set(true);
    ch_->flit.data.set(f.data);
    ch_->flit.bop.set(f.bop);
    ch_->flit.eop.set(f.eop);
  }

  void clockEdge() override {
    if (!pending_.empty() && ch_->val.get() && ch_->ack.get()) {
      pending_.pop_front();
      ++flitsSent_;
    }
  }

 private:
  ChannelWires* ch_;
  std::deque<Flit> pending_;
  std::uint64_t flitsSent_ = 0;
};

// Consumes flits from a router output channel; `ready` gates the ack so
// tests can exercise backpressure.
class FlitSink : public sim::Module {
 public:
  FlitSink(std::string name, ChannelWires& ch)
      : Module(std::move(name)), ch_(&ch) {}

  // Called with the sink-local cycle number; return false to stall.
  void setReady(std::function<bool(std::uint64_t)> ready) {
    ready_ = std::move(ready);
  }

  const std::vector<Flit>& received() const { return received_; }

 protected:
  void onReset() override {
    received_.clear();
    cycle_ = 0;
  }

  void evaluate() override {
    const bool ready = !ready_ || ready_(cycle_);
    ch_->ack.set(ch_->val.get() && ready);
  }

  void clockEdge() override {
    if (ch_->val.get() && ch_->ack.get()) {
      Flit f;
      f.data = ch_->flit.data.get();
      f.bop = ch_->flit.bop.get();
      f.eop = ch_->flit.eop.get();
      received_.push_back(f);
    }
    ++cycle_;
  }

 private:
  ChannelWires* ch_;
  std::function<bool(std::uint64_t)> ready_;
  std::vector<Flit> received_;
  std::uint64_t cycle_ = 0;
};

}  // namespace rasoc::router::test
