// Differential fuzz: both InputBuffer microarchitectures (FfFifo shift
// register, EabFifo ring buffer) against an executable reference model
// built on std::deque.  The model encodes the documented FIFO contract —
// including the subtle corner where a write arrives while the buffer is
// full but a simultaneous read frees the slot on the same edge — and every
// cycle the visible outputs (wok / rok / dout / occupancy / overflow flag)
// of model and hardware must agree flit-for-flit.
#include "router/fifo.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <tuple>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace rasoc::router {
namespace {

// Golden-model FIFO: same contract as InputBuffer, no clocking machinery.
class ReferenceFifo {
 public:
  ReferenceFifo(int dataBits, int depth)
      : mask_(dataMask(dataBits)), depth_(depth) {}

  bool wok() const { return static_cast<int>(q_.size()) < depth_; }
  bool rok() const { return !q_.empty(); }
  Flit dout() const { return q_.empty() ? Flit{} : q_.front(); }
  int occupancy() const { return static_cast<int>(q_.size()); }
  bool overflow() const { return overflow_; }

  void clockEdge(Flit din, bool wr, bool rd) {
    const bool doRead = rd && !q_.empty();
    const bool doWrite = wr && (wok() || doRead);
    if (wr && !wok() && !doRead) overflow_ = true;
    if (doRead) q_.pop_front();
    if (doWrite) {
      din.data &= mask_;
      q_.push_back(din);
    }
  }

 private:
  std::uint32_t mask_;
  int depth_;
  std::deque<Flit> q_;
  bool overflow_ = false;
};

struct FuzzHarness {
  FuzzHarness(int n, int p, FifoImpl impl, sim::Simulator::Kernel kernel)
      : model(n, p) {
    RouterParams params;
    params.n = n;
    params.p = p;
    params.fifoImpl = impl;
    fifo = InputBuffer::create("fifo", params, din, wr, rd, dout, wok, rok);
    sim.setKernel(kernel);
    sim.add(*fifo);
    sim.reset();
  }

  // Drives one cycle into both the hardware and the model, then checks
  // every observable output.  Returns via gtest assertions.
  void cycleAndCompare(std::uint32_t data, bool bop, bool eop, bool write,
                       bool read, const std::string& where) {
    din.data.force(data);
    din.bop.force(bop);
    din.eop.force(eop);
    wr.force(write);
    rd.force(read);
    sim.settle();
    Flit sampled;
    sampled.data = data;
    sampled.bop = bop;
    sampled.eop = eop;
    sim.tick();
    model.clockEdge(sampled, write, read);
    sim.settle();

    ASSERT_EQ(wok.get(), model.wok()) << where;
    ASSERT_EQ(rok.get(), model.rok()) << where;
    ASSERT_EQ(fifo->occupancy(), model.occupancy()) << where;
    ASSERT_EQ(fifo->overflowDetected(), model.overflow()) << where;
    const Flit expect = model.dout();
    ASSERT_EQ(dout.data.get(), expect.data) << where;
    ASSERT_EQ(dout.bop.get(), expect.bop) << where;
    ASSERT_EQ(dout.eop.get(), expect.eop) << where;
  }

  FlitWires din;
  FlitWires dout;
  sim::Wire<bool> wr, rd, wok, rok;
  ReferenceFifo model;
  std::unique_ptr<InputBuffer> fifo;
  sim::Simulator sim;
};

class FifoFuzz : public ::testing::TestWithParam<
                     std::tuple<FifoImpl, int, sim::Simulator::Kernel>> {
 protected:
  FifoImpl impl() const { return std::get<0>(GetParam()); }
  int depth() const { return std::get<1>(GetParam()); }
  sim::Simulator::Kernel kernel() const { return std::get<2>(GetParam()); }
};

TEST_P(FifoFuzz, RandomStrobesMatchReferenceModel) {
  for (const std::uint64_t seed : {1u, 77u, 4242u}) {
    FuzzHarness h(8, depth(), impl(), kernel());
    sim::Xoshiro256 rng(seed);
    for (int step = 0; step < 2000; ++step) {
      // Biased strobes so full and empty are both visited often; data wider
      // than n exercises the write-side masking.
      const bool write = rng.chance(0.55);
      const bool read = rng.chance(0.45);
      const auto data = static_cast<std::uint32_t>(rng.next() & 0x3ff);
      const bool bop = rng.chance(0.25);
      const bool eop = rng.chance(0.25);
      h.cycleAndCompare(data, bop, eop, write, read,
                        "seed " + std::to_string(seed) + " step " +
                            std::to_string(step));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST_P(FifoFuzz, WriteWhileFullWithSimultaneousRead) {
  // Directed version of the trickiest legal transaction: fill the FIFO,
  // then push-while-popping at full occupancy for several cycles.  The slot
  // freed by the read must accept the write on the same edge without
  // tripping the overflow detector, and the head must advance in order.
  FuzzHarness h(8, depth(), impl(), kernel());
  for (int i = 0; i < depth(); ++i) {
    h.cycleAndCompare(static_cast<std::uint32_t>(0x20 + i), i == 0, false,
                      /*write=*/true, /*read=*/false,
                      "fill " + std::to_string(i));
    if (::testing::Test::HasFatalFailure()) return;
  }
  ASSERT_TRUE(h.fifo->full());
  for (int i = 0; i < 3 * depth(); ++i) {
    h.cycleAndCompare(static_cast<std::uint32_t>(0x40 + i), false,
                      i % depth() == 0,
                      /*write=*/true, /*read=*/true,
                      "swap " + std::to_string(i));
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_TRUE(h.fifo->full()) << "swap " << i;
  }
  EXPECT_FALSE(h.fifo->overflowDetected());
  // And the illegal cousin: write-while-full with no read must stick the
  // overflow flag (in both model and hardware) and drop the flit.
  h.cycleAndCompare(0xff, false, false, /*write=*/true, /*read=*/false,
                    "overflow");
  EXPECT_TRUE(h.fifo->overflowDetected());
}

INSTANTIATE_TEST_SUITE_P(
    BothImplsDepthsAndKernels, FifoFuzz,
    ::testing::Combine(::testing::Values(FifoImpl::FlipFlop, FifoImpl::Eab),
                       ::testing::Values(1, 2, 4, 7),
                       ::testing::Values(sim::Simulator::Kernel::Naive,
                                         sim::Simulator::Kernel::EventDriven)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == FifoImpl::FlipFlop
                             ? "Ff"
                             : "Eab") +
             "Depth" + std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) == sim::Simulator::Kernel::Naive
                  ? "Naive"
                  : "Event");
    });

}  // namespace
}  // namespace rasoc::router
