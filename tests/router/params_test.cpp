#include "router/params.hpp"

#include <gtest/gtest.h>

namespace rasoc::router {
namespace {

TEST(PortTest, NamesAndIndices) {
  EXPECT_EQ(name(Port::Local), "L");
  EXPECT_EQ(name(Port::North), "N");
  EXPECT_EQ(name(Port::East), "E");
  EXPECT_EQ(name(Port::South), "S");
  EXPECT_EQ(name(Port::West), "W");
  EXPECT_EQ(index(Port::Local), 0);
  EXPECT_EQ(index(Port::West), 4);
}

TEST(PortTest, OppositePairs) {
  EXPECT_EQ(opposite(Port::North), Port::South);
  EXPECT_EQ(opposite(Port::South), Port::North);
  EXPECT_EQ(opposite(Port::East), Port::West);
  EXPECT_EQ(opposite(Port::West), Port::East);
  EXPECT_THROW(opposite(Port::Local), std::invalid_argument);
}

TEST(RouterParamsTest, DefaultsAreValid) {
  RouterParams params;
  EXPECT_NO_THROW(params.validate());
  EXPECT_EQ(params.portCount(), 5);
  EXPECT_EQ(params.flitBits(), params.n + 2);
}

TEST(RouterParamsTest, PortMaskQueries) {
  RouterParams params;
  params.portMask = (1u << index(Port::Local)) | (1u << index(Port::East));
  EXPECT_TRUE(params.hasPort(Port::Local));
  EXPECT_TRUE(params.hasPort(Port::East));
  EXPECT_FALSE(params.hasPort(Port::West));
  EXPECT_EQ(params.portCount(), 2);
}

TEST(RouterParamsTest, ValidationRejectsBadWidths) {
  RouterParams params;
  params.n = 1;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params.n = 33;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params.n = 8;
  params.m = 7;  // odd
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params.m = 10;  // RIB wider than the data channel
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params.m = 8;
  params.p = 0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params.p = 4;
  params.portMask = 0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params.portMask = 0x3f;  // sixth port does not exist
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST(RouterParamsTest, TypicalPaperConfigurationsValidate) {
  for (int n : {8, 16, 32}) {
    for (int p : {2, 4}) {
      RouterParams params;
      params.n = n;
      params.p = p;
      EXPECT_NO_THROW(params.validate()) << "n=" << n << " p=" << p;
    }
  }
}

TEST(FifoImplTest, Names) {
  EXPECT_EQ(name(FifoImpl::FlipFlop), "FF-based");
  EXPECT_EQ(name(FifoImpl::Eab), "EAB-based");
}

}  // namespace
}  // namespace rasoc::router
