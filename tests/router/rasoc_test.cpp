// Whole-router tests: packets driven through a single RASoC instance (and
// small chains) with handshake sources and sinks.
#include "router/rasoc.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "router/link.hpp"
#include "sim/simulator.hpp"
#include "testbench.hpp"

namespace rasoc::router {
namespace {

using test::FlitSink;
using test::FlitSource;

struct RouterHarness {
  explicit RouterHarness(RouterParams params = {},
                         ArbiterKind kind = ArbiterKind::RoundRobin)
      : router("dut", params, kind) {
    sim.add(router);
    for (Port p : kAllPorts) {
      if (!params.hasPort(p)) continue;
      sources[p] = std::make_unique<FlitSource>(
          "src" + std::string(name(p)), router.in(p));
      sinks[p] = std::make_unique<FlitSink>("sink" + std::string(name(p)),
                                            router.out(p));
      sim.add(*sources[p]);
      sim.add(*sinks[p]);
    }
    sim.reset();
  }

  void inject(Port p, Rib rib, const std::vector<std::uint32_t>& payload) {
    sources.at(p)->queue(makePacket(rib, payload, router.params()));
  }

  // Runs until every sink has stopped growing for `quiet` cycles.
  void runToQuiescence(std::uint64_t maxCycles = 2000, int quiet = 20) {
    std::size_t lastTotal = 0;
    int quietCycles = 0;
    for (std::uint64_t c = 0; c < maxCycles && quietCycles < quiet; ++c) {
      sim.step();
      std::size_t total = 0;
      for (auto& [p, sink] : sinks) total += sink->received().size();
      bool sourcesDone = true;
      for (auto& [p, src] : sources) sourcesDone &= src->done();
      if (total == lastTotal && sourcesDone) {
        ++quietCycles;
      } else {
        quietCycles = 0;
        lastTotal = total;
      }
    }
    sim.settle();
  }

  Rasoc router;
  std::map<Port, std::unique_ptr<FlitSource>> sources;
  std::map<Port, std::unique_ptr<FlitSink>> sinks;
  sim::Simulator sim;
};

std::vector<std::vector<Flit>> packetsOf(const std::vector<Flit>& flits) {
  std::vector<std::vector<Flit>> packets;
  std::vector<Flit> current;
  for (const Flit& f : flits) {
    if (f.bop) current.clear();
    current.push_back(f);
    if (f.eop) {
      packets.push_back(current);
      current.clear();
    }
  }
  return packets;
}

TEST(RasocTest, RoutesLocalToEastAndDecrementsRib) {
  RouterHarness h;
  h.inject(Port::Local, Rib{2, 0}, {0xaa, 0xbb, 0xcc});
  h.runToQuiescence();
  const auto& out = h.sinks[Port::East]->received();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_TRUE(out[0].bop);
  EXPECT_EQ(decodeRib(out[0].data, 8), (Rib{1, 0}));
  EXPECT_EQ(out[1].data, 0xaau);
  EXPECT_EQ(out[2].data, 0xbbu);
  EXPECT_EQ(out[3].data, 0xccu);
  EXPECT_TRUE(out[3].eop);
  EXPECT_TRUE(h.router.misrouteDetected() == false);
}

TEST(RasocTest, RoutesEveryDirectionFromLocal) {
  const struct {
    Rib rib;
    Port expected;
  } cases[] = {{{1, 0}, Port::East},
               {{-1, 0}, Port::West},
               {{0, 1}, Port::North},
               {{0, -1}, Port::South}};
  for (const auto& c : cases) {
    RouterHarness h;
    h.inject(Port::Local, c.rib, {0x11});
    h.runToQuiescence();
    EXPECT_EQ(h.sinks[c.expected]->received().size(), 2u)
        << "direction " << name(c.expected);
    EXPECT_EQ(decodeRib(h.sinks[c.expected]->received()[0].data, 8),
              (Rib{0, 0}));
  }
}

TEST(RasocTest, DeliversZeroOffsetHeaderToLocalPort) {
  RouterHarness h;
  h.inject(Port::West, Rib{0, 0}, {0x42});
  h.runToQuiescence();
  ASSERT_EQ(h.sinks[Port::Local]->received().size(), 2u);
  EXPECT_EQ(h.sinks[Port::Local]->received()[1].data, 0x42u);
  EXPECT_FALSE(h.router.misrouteDetected());
}

TEST(RasocTest, PipelinesOneFlitPerCycleAfterSetup) {
  RouterParams params;
  params.p = 4;
  RouterHarness h(params);
  std::vector<std::uint32_t> payload(32);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint32_t>(i);
  h.inject(Port::Local, Rib{1, 0}, payload);
  const std::uint64_t start = h.sim.cycle();
  h.runToQuiescence();
  const auto& out = h.sinks[Port::East]->received();
  ASSERT_EQ(out.size(), payload.size() + 1);
  // 33 flits must stream in roughly 33 cycles + small setup (runToQuiescence
  // adds its quiet tail, so bound generously but far below 2 cycles/flit).
  EXPECT_LT(h.sim.cycle() - start, payload.size() + 30);
}

TEST(RasocTest, BackpressureStallsWithoutLossOrOverflow) {
  RouterParams params;
  params.p = 2;
  RouterHarness h(params);
  h.sinks[Port::East]->setReady([](std::uint64_t c) { return c % 3 == 0; });
  std::vector<std::uint32_t> payload(20);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint32_t>(i + 1);
  h.inject(Port::Local, Rib{1, 0}, payload);
  h.runToQuiescence(4000);
  const auto& out = h.sinks[Port::East]->received();
  ASSERT_EQ(out.size(), payload.size() + 1);
  for (std::size_t i = 0; i < payload.size(); ++i)
    EXPECT_EQ(out[i + 1].data, payload[i]);
  EXPECT_FALSE(h.router.overflowDetected());
}

TEST(RasocTest, DisjointTransfersProceedConcurrently) {
  RouterHarness h;
  std::vector<std::uint32_t> payload(24, 0x7);
  h.inject(Port::Local, Rib{1, 0}, payload);   // L -> E
  h.inject(Port::West, Rib{0, 1}, payload);    // W -> N
  const std::uint64_t start = h.sim.cycle();
  h.runToQuiescence();
  EXPECT_EQ(h.sinks[Port::East]->received().size(), payload.size() + 1);
  EXPECT_EQ(h.sinks[Port::North]->received().size(), payload.size() + 1);
  // Concurrent, not serialized: far less than two back-to-back packets.
  EXPECT_LT(h.sim.cycle() - start, 2 * payload.size());
}

TEST(RasocTest, ConflictingPacketsAreSerializedWithoutInterleaving) {
  RouterHarness h;
  h.inject(Port::Local, Rib{1, 0}, {0x10, 0x11, 0x12});
  h.inject(Port::West, Rib{1, 0}, {0x20, 0x21, 0x22});
  h.runToQuiescence();
  const auto packets = packetsOf(h.sinks[Port::East]->received());
  ASSERT_EQ(packets.size(), 2u);
  for (const auto& packet : packets) {
    ASSERT_EQ(packet.size(), 4u);
    // All payload flits of one packet share the same source marker nibble.
    const std::uint32_t marker = packet[1].data >> 4;
    EXPECT_EQ(packet[2].data >> 4, marker);
    EXPECT_EQ(packet[3].data >> 4, marker);
  }
}

TEST(RasocTest, RoundRobinAlternatesBetweenPersistentCompetitors) {
  RouterHarness h;
  for (int i = 0; i < 4; ++i) {
    h.inject(Port::Local, Rib{1, 0}, {0x10u + static_cast<std::uint32_t>(i)});
    h.inject(Port::West, Rib{1, 0}, {0x20u + static_cast<std::uint32_t>(i)});
  }
  h.runToQuiescence();
  const auto packets = packetsOf(h.sinks[Port::East]->received());
  ASSERT_EQ(packets.size(), 8u);
  // With round-robin arbitration the two sources must alternate strictly
  // once both are backlogged.
  int switches = 0;
  for (std::size_t i = 1; i < packets.size(); ++i) {
    const bool prevFromLocal = (packets[i - 1][1].data & 0xf0u) == 0x10u;
    const bool thisFromLocal = (packets[i][1].data & 0xf0u) == 0x10u;
    switches += prevFromLocal != thisFromLocal ? 1 : 0;
  }
  EXPECT_GE(switches, 5);
}

TEST(RasocTest, PrunedPortsAreAbsent) {
  RouterParams params;
  params.portMask = (1u << index(Port::Local)) | (1u << index(Port::East));
  RouterHarness h(params);
  EXPECT_THROW(h.router.in(Port::West), std::out_of_range);
  EXPECT_THROW(h.router.out(Port::North), std::out_of_range);
  h.inject(Port::Local, Rib{1, 0}, {0x55});
  h.runToQuiescence();
  EXPECT_EQ(h.sinks[Port::East]->received().size(), 2u);
}

TEST(RasocTest, SingleFlitPacketIsDelivered) {
  RouterHarness h;
  // Hand-build a header that is also the trailer (bop && eop).
  Flit flit;
  flit.data = encodeRib(Rib{1, 0}, 8);
  flit.bop = true;
  flit.eop = true;
  h.sources[Port::Local]->queue({flit});
  h.runToQuiescence();
  ASSERT_EQ(h.sinks[Port::East]->received().size(), 1u);
  EXPECT_TRUE(h.sinks[Port::East]->received()[0].bop);
  EXPECT_TRUE(h.sinks[Port::East]->received()[0].eop);
}

TEST(RasocTest, SelfAddressedLocalPacketSetsMisrouteFlag) {
  RouterHarness h;
  h.inject(Port::Local, Rib{0, 0}, {0x1});
  h.runToQuiescence();
  EXPECT_TRUE(h.router.misrouteDetected());
}

TEST(RasocTest, BackToBackPacketsToDifferentOutputs) {
  RouterHarness h;
  h.inject(Port::Local, Rib{1, 0}, {0xe1, 0xe2});
  h.inject(Port::Local, Rib{0, 1}, {0xf1, 0xf2});
  h.inject(Port::Local, Rib{-1, 0}, {0xd1, 0xd2});
  h.runToQuiescence();
  EXPECT_EQ(h.sinks[Port::East]->received().size(), 3u);
  EXPECT_EQ(h.sinks[Port::North]->received().size(), 3u);
  EXPECT_EQ(h.sinks[Port::West]->received().size(), 3u);
}

TEST(RasocTest, RunsAreDeterministic) {
  auto run = [] {
    RouterHarness h;
    h.inject(Port::Local, Rib{1, 0}, {1, 2, 3});
    h.inject(Port::West, Rib{1, 0}, {4, 5, 6});
    h.runToQuiescence();
    return h.sinks[Port::East]->received();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(RasocTest, TwoRouterChainDecrementsRibPerHop) {
  RouterParams params;
  sim::Simulator sim;
  Rasoc a("a", params), b("b", params);
  Link ab("a.E->b.W", a.out(Port::East), b.in(Port::West));
  Link ba("b.W->a.E", b.out(Port::West), a.in(Port::East));
  FlitSource src("src", a.in(Port::Local));
  FlitSink sink("sink", b.out(Port::East));
  FlitSink sinkLocalB("sinkLB", b.out(Port::Local));
  sim.add(a);
  sim.add(b);
  sim.add(ab);
  sim.add(ba);
  sim.add(src);
  sim.add(sink);
  sim.add(sinkLocalB);
  sim.reset();

  src.queue(makePacket(Rib{2, 0}, {0x77}, params));
  for (int i = 0; i < 60; ++i) sim.step();
  sim.settle();
  ASSERT_EQ(sink.received().size(), 2u);
  EXPECT_EQ(decodeRib(sink.received()[0].data, 8), (Rib{0, 0}));
  EXPECT_EQ(ab.flitsTransferred(), 2u);
}

TEST(RasocTest, WiderDataPathCarriesFullWords) {
  RouterParams params;
  params.n = 32;
  RouterHarness h(params);
  h.inject(Port::Local, Rib{1, 0}, {0xdeadbeef, 0xcafef00d});
  h.runToQuiescence();
  const auto& out = h.sinks[Port::East]->received();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1].data, 0xdeadbeefu);
  EXPECT_EQ(out[2].data, 0xcafef00du);
}

}  // namespace
}  // namespace rasoc::router
