// Link and FaultyLink unit tests over bare channel wires.
#include "router/link.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <vector>

#include "router/faulty_link.hpp"
#include "sim/simulator.hpp"

namespace rasoc::router {
namespace {

struct LinkRig {
  explicit LinkRig(double faultRate = -1.0, int dataBits = 16)
      : link(faultRate < 0.0
                 ? std::unique_ptr<Link>(new Link("link", src, dst))
                 : std::unique_ptr<Link>(new FaultyLink(
                       "flink", src, dst, dataBits, faultRate, 77))) {
    sim.add(*link);
    sim.reset();
  }

  // Presents one flit upstream with the sink always ready, steps a cycle.
  void transfer(std::uint32_t data, bool bop, bool eop) {
    src.flit.data.force(data);
    src.flit.bop.force(bop);
    src.flit.eop.force(eop);
    src.val.force(true);
    dst.ack.force(true);
    sim.settle();
    sim.step();
  }

  ChannelWires src, dst;
  std::unique_ptr<Link> link;
  sim::Simulator sim;
};

TEST(LinkTest, ForwardsDataAndFraming) {
  LinkRig rig;
  rig.src.flit.data.force(0xbeef);
  rig.src.flit.bop.force(true);
  rig.src.flit.eop.force(false);
  rig.src.val.force(true);
  rig.sim.settle();
  EXPECT_EQ(rig.dst.flit.data.get(), 0xbeefu);
  EXPECT_TRUE(rig.dst.flit.bop.get());
  EXPECT_FALSE(rig.dst.flit.eop.get());
  EXPECT_TRUE(rig.dst.val.get());
}

TEST(LinkTest, AckTravelsUpstream) {
  LinkRig rig;
  rig.dst.ack.force(true);
  rig.sim.settle();
  EXPECT_TRUE(rig.src.ack.get());
  rig.dst.ack.force(false);
  rig.sim.settle();
  EXPECT_FALSE(rig.src.ack.get());
}

TEST(LinkTest, CountsOnlyAcknowledgedTransfers) {
  LinkRig rig;
  rig.src.val.force(true);
  rig.dst.ack.force(false);  // stalled
  rig.sim.settle();
  rig.sim.step();
  EXPECT_EQ(rig.link->flitsTransferred(), 0u);
  rig.dst.ack.force(true);
  rig.sim.settle();
  rig.sim.step();
  EXPECT_EQ(rig.link->flitsTransferred(), 1u);
  EXPECT_DOUBLE_EQ(rig.link->utilization(2), 0.5);
}

TEST(FaultyLinkUnitTest, AlwaysFlipCorruptsEveryPayloadFlit) {
  LinkRig rig(/*faultRate=*/1.0);
  for (int i = 0; i < 20; ++i) rig.transfer(0x0, /*bop=*/false, false);
  auto* faulty = dynamic_cast<FaultyLink*>(rig.link.get());
  ASSERT_NE(faulty, nullptr);
  EXPECT_EQ(faulty->flitsCorrupted(), 20u);
}

TEST(FaultyLinkUnitTest, CorruptionIsExactlyOneBit) {
  LinkRig rig(1.0);
  for (int i = 0; i < 50; ++i) {
    rig.src.flit.data.force(0x0);
    rig.src.flit.bop.force(false);
    rig.src.flit.eop.force(false);
    rig.src.val.force(true);
    rig.dst.ack.force(true);
    rig.sim.settle();
    const std::uint32_t received = rig.dst.flit.data.get();
    EXPECT_EQ(std::popcount(received), 1) << "flit " << i;
    EXPECT_LT(received, 1u << 16) << "flip stays inside the data bits";
    rig.sim.step();
  }
}

TEST(FaultyLinkUnitTest, HeadersPassClean) {
  LinkRig rig(1.0);
  rig.src.flit.data.force(0x1234);
  rig.src.flit.bop.force(true);
  rig.src.val.force(true);
  rig.dst.ack.force(true);
  rig.sim.settle();
  EXPECT_EQ(rig.dst.flit.data.get(), 0x1234u);
  rig.sim.step();
  auto* faulty = dynamic_cast<FaultyLink*>(rig.link.get());
  EXPECT_EQ(faulty->flitsCorrupted(), 0u);
}

TEST(FaultyLinkUnitTest, EvaluateIsIdempotentWithinACycle) {
  // The fixpoint loop re-runs evaluate(); the injected mask must not
  // change between passes of the same cycle.
  LinkRig rig(1.0);
  rig.src.flit.data.force(0x0);
  rig.src.flit.bop.force(false);
  rig.src.val.force(true);
  rig.dst.ack.force(true);
  rig.sim.settle();
  const std::uint32_t first = rig.dst.flit.data.get();
  rig.sim.settle();
  rig.sim.settle();
  EXPECT_EQ(rig.dst.flit.data.get(), first);
}

TEST(FaultyLinkUnitTest, ResetRestoresDeterministicSequence) {
  auto corrupt = [](LinkRig& rig, int flits) {
    std::vector<std::uint32_t> seen;
    for (int i = 0; i < flits; ++i) {
      rig.src.flit.data.force(0);
      rig.src.flit.bop.force(false);
      rig.src.val.force(true);
      rig.dst.ack.force(true);
      rig.sim.settle();
      seen.push_back(rig.dst.flit.data.get());
      rig.sim.step();
    }
    return seen;
  };
  LinkRig rig(0.5);
  const auto first = corrupt(rig, 30);
  rig.sim.reset();
  const auto second = corrupt(rig, 30);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace rasoc::router
