#include "router/fifo.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace rasoc::router {
namespace {

// Direct-wire harness around one InputBuffer.
struct FifoHarness {
  explicit FifoHarness(int n, int p, FifoImpl impl) {
    RouterParams params;
    params.n = n;
    params.p = p;
    params.fifoImpl = impl;
    fifo = InputBuffer::create("fifo", params, din, wr, rd, dout, wok, rok);
    sim.add(*fifo);
    sim.reset();
  }

  // One cycle with the given strobes; data only matters when writing.
  void cycle(bool write, bool read, std::uint32_t data = 0, bool bop = false,
             bool eop = false) {
    din.data.force(data);
    din.bop.force(bop);
    din.eop.force(eop);
    wr.force(write);
    rd.force(read);
    sim.step();
    sim.settle();
  }

  FlitWires din;
  FlitWires dout;
  sim::Wire<bool> wr, rd, wok, rok;
  std::unique_ptr<InputBuffer> fifo;
  sim::Simulator sim;
};

class FifoBothImpls
    : public ::testing::TestWithParam<std::tuple<FifoImpl, int>> {
 protected:
  FifoImpl impl() const { return std::get<0>(GetParam()); }
  int depth() const { return std::get<1>(GetParam()); }
};

TEST_P(FifoBothImpls, StartsEmpty) {
  FifoHarness h(8, depth(), impl());
  EXPECT_TRUE(h.fifo->empty());
  EXPECT_FALSE(h.fifo->full());
  EXPECT_TRUE(h.wok.get());
  EXPECT_FALSE(h.rok.get());
}

TEST_P(FifoBothImpls, FillsToDepthThenSignalsFull) {
  FifoHarness h(8, depth(), impl());
  for (int i = 0; i < depth(); ++i) {
    EXPECT_TRUE(h.wok.get()) << "slot " << i;
    h.cycle(/*write=*/true, /*read=*/false, static_cast<std::uint32_t>(i));
  }
  EXPECT_TRUE(h.fifo->full());
  EXPECT_FALSE(h.wok.get());
  EXPECT_TRUE(h.rok.get());
  EXPECT_FALSE(h.fifo->overflowDetected());
}

TEST_P(FifoBothImpls, DrainsInFifoOrder) {
  FifoHarness h(8, depth(), impl());
  for (int i = 0; i < depth(); ++i)
    h.cycle(true, false, static_cast<std::uint32_t>(10 + i));
  for (int i = 0; i < depth(); ++i) {
    EXPECT_TRUE(h.rok.get());
    EXPECT_EQ(h.dout.data.get(), static_cast<std::uint32_t>(10 + i));
    h.cycle(false, true);
  }
  EXPECT_TRUE(h.fifo->empty());
  EXPECT_FALSE(h.rok.get());
}

TEST_P(FifoBothImpls, FramingBitsTravelWithTheData) {
  FifoHarness h(8, depth(), impl());
  h.cycle(true, false, 0x5a, /*bop=*/true, /*eop=*/false);
  EXPECT_TRUE(h.dout.bop.get());
  EXPECT_FALSE(h.dout.eop.get());
  h.cycle(true, true, 0x3c, /*bop=*/false, /*eop=*/true);
  EXPECT_FALSE(h.dout.bop.get());
  EXPECT_TRUE(h.dout.eop.get());
}

TEST_P(FifoBothImpls, SimultaneousReadWriteKeepsOccupancy) {
  FifoHarness h(8, depth(), impl());
  h.cycle(true, false, 1);
  const int before = h.fifo->occupancy();
  h.cycle(true, true, 2);
  EXPECT_EQ(h.fifo->occupancy(), before);
  EXPECT_EQ(h.dout.data.get(), 2u);
}

TEST_P(FifoBothImpls, WriteWhenFullIsDroppedAndFlagged) {
  FifoHarness h(8, depth(), impl());
  for (int i = 0; i < depth(); ++i)
    h.cycle(true, false, static_cast<std::uint32_t>(i));
  h.cycle(true, false, 99);  // must be rejected
  EXPECT_EQ(h.fifo->occupancy(), depth());
  EXPECT_TRUE(h.fifo->overflowDetected());
  // Drain and confirm 99 never entered.
  for (int i = 0; i < depth(); ++i) {
    EXPECT_EQ(h.dout.data.get(), static_cast<std::uint32_t>(i));
    h.cycle(false, true);
  }
}

TEST_P(FifoBothImpls, ReadWhenEmptyIsIgnored) {
  FifoHarness h(8, depth(), impl());
  h.cycle(false, true);
  EXPECT_TRUE(h.fifo->empty());
  h.cycle(true, false, 7);
  EXPECT_EQ(h.dout.data.get(), 7u);
}

TEST_P(FifoBothImpls, DataIsMaskedToChannelWidth) {
  FifoHarness h(8, depth(), impl());
  h.cycle(true, false, 0xfff);
  EXPECT_EQ(h.dout.data.get(), 0xffu);
}

TEST_P(FifoBothImpls, WrapAroundKeepsOrderAcrossManyOperations) {
  FifoHarness h(16, depth(), impl());
  std::uint32_t writeSeq = 0, readSeq = 0;
  // Interleave writes and reads long enough to wrap several times.
  for (int step = 0; step < 6 * depth(); ++step) {
    const bool canWrite = !h.fifo->full();
    if (canWrite) {
      h.cycle(true, false, writeSeq++);
    }
    if (h.fifo->occupancy() >= depth() / 2 + 1) {
      while (!h.fifo->empty()) {
        EXPECT_EQ(h.dout.data.get(), readSeq++);
        h.cycle(false, true);
      }
    }
  }
  while (!h.fifo->empty()) {
    EXPECT_EQ(h.dout.data.get(), readSeq++);
    h.cycle(false, true);
  }
  EXPECT_EQ(readSeq, writeSeq);
}

INSTANTIATE_TEST_SUITE_P(
    ImplAndDepth, FifoBothImpls,
    ::testing::Combine(::testing::Values(FifoImpl::FlipFlop, FifoImpl::Eab),
                       ::testing::Values(1, 2, 3, 4, 8)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == FifoImpl::FlipFlop
                             ? "FF"
                             : "EAB") +
             "_p" + std::to_string(std::get<1>(info.param));
    });

// Behavioural equivalence: drive both implementations with an identical
// random strobe sequence and require identical observable behaviour.
class FifoEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FifoEquivalence, FfAndEabAreObservationallyEquivalent) {
  const int depth = GetParam();
  FifoHarness ff(8, depth, FifoImpl::FlipFlop);
  FifoHarness eab(8, depth, FifoImpl::Eab);
  sim::Xoshiro256 rng(2024);
  for (int step = 0; step < 2000; ++step) {
    const bool write = rng.chance(0.55);
    const bool read = rng.chance(0.45);
    const auto data = static_cast<std::uint32_t>(rng.below(256));
    const bool bop = rng.chance(0.2);
    const bool eop = rng.chance(0.2);
    ff.cycle(write, read, data, bop, eop);
    eab.cycle(write, read, data, bop, eop);
    ASSERT_EQ(ff.fifo->occupancy(), eab.fifo->occupancy()) << "step " << step;
    ASSERT_EQ(ff.wok.get(), eab.wok.get()) << "step " << step;
    ASSERT_EQ(ff.rok.get(), eab.rok.get()) << "step " << step;
    if (ff.rok.get()) {
      ASSERT_EQ(ff.dout.data.get(), eab.dout.data.get()) << "step " << step;
      ASSERT_EQ(ff.dout.bop.get(), eab.dout.bop.get()) << "step " << step;
      ASSERT_EQ(ff.dout.eop.get(), eab.dout.eop.get()) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, FifoEquivalence,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

}  // namespace
}  // namespace rasoc::router
