// Credit-based flow control (the paper's Section 2.2 OFC replacement):
// block-level tests of the credit counter plus a two-router chain running
// entirely under credits.
#include <gtest/gtest.h>

#include <memory>

#include "router/credit.hpp"
#include "router/link.hpp"
#include "router/rasoc.hpp"
#include "sim/simulator.hpp"
#include "testbench.hpp"

namespace rasoc::router {
namespace {

TEST(CreditOfcTest, StartsWithInitialCreditsAndGatesVal) {
  std::array<CrossbarWires, kNumPorts> xbar;
  sim::Wire<bool> rokSel, creditReturn, outVal, xRd;
  CreditOfc ofc("ofc", Port::East, 2, rokSel, creditReturn, outVal, xRd,
                xbar);
  sim::Simulator sim;
  sim.add(ofc);
  sim.reset();
  EXPECT_EQ(ofc.credits(), 2);

  rokSel.force(true);
  sim.settle();
  EXPECT_TRUE(outVal.get());
  EXPECT_TRUE(xRd.get());

  // Two sends exhaust the credits.
  sim.step();
  sim.step();
  sim.settle();
  EXPECT_EQ(ofc.credits(), 0);
  EXPECT_FALSE(outVal.get());
  EXPECT_FALSE(xRd.get());

  // A returned credit re-enables sending.
  creditReturn.force(true);
  sim.step();
  creditReturn.force(false);
  sim.settle();
  EXPECT_EQ(ofc.credits(), 1);
  EXPECT_TRUE(outVal.get());
}

TEST(CreditOfcTest, SimultaneousSendAndReturnKeepsCreditCount) {
  std::array<CrossbarWires, kNumPorts> xbar;
  sim::Wire<bool> rokSel, creditReturn, outVal, xRd;
  CreditOfc ofc("ofc", Port::East, 3, rokSel, creditReturn, outVal, xRd,
                xbar);
  sim::Simulator sim;
  sim.add(ofc);
  sim.reset();
  rokSel.force(true);
  creditReturn.force(true);
  for (int i = 0; i < 5; ++i) sim.step();
  EXPECT_EQ(ofc.credits(), 3);
}

TEST(CreditOfcTest, NoSendWithoutDataEvenWithCredits) {
  std::array<CrossbarWires, kNumPorts> xbar;
  sim::Wire<bool> rokSel, creditReturn, outVal, xRd;
  CreditOfc ofc("ofc", Port::East, 4, rokSel, creditReturn, outVal, xRd,
                xbar);
  sim::Simulator sim;
  sim.add(ofc);
  sim.reset();
  rokSel.force(false);
  sim.settle();
  EXPECT_FALSE(outVal.get());
  sim.step();
  EXPECT_EQ(ofc.credits(), 4);
}

TEST(CreditReturnTapTest, PulsesOnActualPops) {
  sim::Wire<bool> rd, rok, credit;
  CreditReturnTap tap("tap", rd, rok, credit);
  sim::Simulator sim;
  sim.add(tap);
  rd.force(true);
  rok.force(false);  // read command on an empty buffer: no pop
  sim.settle();
  EXPECT_FALSE(credit.get());
  rok.force(true);
  sim.settle();
  EXPECT_TRUE(credit.get());
}

// --- Credit-mode router chain ---------------------------------------------

// A credit-aware source: sends only while it holds credits for the
// downstream buffer; the channel ack wire returns credits.
class CreditSource : public sim::Module {
 public:
  CreditSource(std::string name, ChannelWires& ch, int initialCredits)
      : Module(std::move(name)), ch_(&ch), initial_(initialCredits) {}

  void queue(const std::vector<Flit>& flits) {
    for (const Flit& f : flits) pending_.push_back(f);
  }
  bool done() const { return pending_.empty(); }

 protected:
  void onReset() override {
    credits_ = initial_;
    pending_.clear();
  }
  void evaluate() override {
    const bool send = !pending_.empty() && credits_ > 0;
    if (send) {
      const Flit& f = pending_.front();
      ch_->flit.data.set(f.data);
      ch_->flit.bop.set(f.bop);
      ch_->flit.eop.set(f.eop);
    }
    ch_->val.set(send);
  }
  void clockEdge() override {
    const bool sent = ch_->val.get();
    if (sent) pending_.pop_front();
    credits_ += (ch_->ack.get() ? 1 : 0) - (sent ? 1 : 0);
    ASSERT_GE(credits_, 0) << "credit underflow at " << name();
  }

 private:
  ChannelWires* ch_;
  int initial_;
  int credits_ = 0;
  std::deque<Flit> pending_;
};

// A credit-aware sink: always accepts, returns a credit per flit.
class CreditSink : public sim::Module {
 public:
  CreditSink(std::string name, ChannelWires& ch)
      : Module(std::move(name)), ch_(&ch) {}
  const std::vector<Flit>& received() const { return received_; }

 protected:
  void onReset() override { received_.clear(); }
  void evaluate() override { ch_->ack.set(ch_->val.get()); }
  void clockEdge() override {
    if (ch_->val.get()) {
      received_.push_back(Flit{ch_->flit.data.get(), ch_->flit.bop.get(),
                               ch_->flit.eop.get()});
    }
  }

 private:
  ChannelWires* ch_;
  std::vector<Flit> received_;
};

TEST(CreditChainTest, PacketsFlowThroughTwoCreditRouters) {
  RouterParams params;
  params.flowControl = FlowControl::CreditBased;
  params.p = 2;
  sim::Simulator sim;
  Rasoc a("a", params), b("b", params);
  Link ab("ab", a.out(Port::East), b.in(Port::West), params.flowControl);
  Link ba("ba", b.out(Port::West), a.in(Port::East), params.flowControl);
  CreditSource src("src", a.in(Port::Local), params.p);
  CreditSink sink("sink", b.out(Port::East));
  sim.add(a);
  sim.add(b);
  sim.add(ab);
  sim.add(ba);
  sim.add(src);
  sim.add(sink);
  sim.reset();

  src.queue(makePacket(Rib{2, 0}, {0x11, 0x22, 0x33, 0x44, 0x55}, params));
  for (int i = 0; i < 120; ++i) sim.step();
  sim.settle();

  ASSERT_EQ(sink.received().size(), 6u);
  EXPECT_TRUE(sink.received()[0].bop);
  EXPECT_EQ(decodeRib(sink.received()[0].data, 8), (Rib{0, 0}));
  EXPECT_EQ(sink.received()[5].data, 0x55u);
  EXPECT_TRUE(sink.received()[5].eop);
  EXPECT_FALSE(a.overflowDetected());
  EXPECT_FALSE(b.overflowDetected());
}

TEST(CreditChainTest, CreditsNeverOverflowTheDownstreamBuffer) {
  // Tiny buffers, long packet, slow consumption: the credit counter is the
  // only thing preventing overflow, and the FIFO's sticky flag proves it.
  RouterParams params;
  params.flowControl = FlowControl::CreditBased;
  params.p = 1;
  sim::Simulator sim;
  Rasoc a("a", params), b("b", params);
  Link ab("ab", a.out(Port::East), b.in(Port::West), params.flowControl);
  Link ba("ba", b.out(Port::West), a.in(Port::East), params.flowControl);
  CreditSource src("src", a.in(Port::Local), params.p);
  CreditSink sink("sink", b.out(Port::East));
  sim.add(a);
  sim.add(b);
  sim.add(ab);
  sim.add(ba);
  sim.add(src);
  sim.add(sink);
  sim.reset();

  std::vector<std::uint32_t> payload(12, 0x3c);
  src.queue(makePacket(Rib{2, 0}, payload, params));
  for (int i = 0; i < 300; ++i) sim.step();
  sim.settle();

  EXPECT_EQ(sink.received().size(), payload.size() + 1);
  EXPECT_FALSE(a.overflowDetected());
  EXPECT_FALSE(b.overflowDetected());
}

}  // namespace
}  // namespace rasoc::router
