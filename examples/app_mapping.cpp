// Design-methodology demo: map a multimedia SoC's core graph onto a RASoC
// mesh, compare greedy vs annealed placements, then validate the predicted
// link loads against the cycle-accurate simulation - the NoC design flow
// the paper reports RASoC being used for ("design methodologies").
//
//   $ ./app_mapping
#include <cstdio>

#include "noc/appmap.hpp"
#include "noc/mesh.hpp"
#include "tech/report.hpp"

using namespace rasoc;

namespace {

// An MPEG-4-decoder-like task graph (bandwidths in flits/cycle), the kind
// of workload the NoC mapping literature of the era uses.
noc::CoreGraph mpeg4ishGraph() {
  noc::CoreGraph graph;
  const int vld = graph.addCore("vld");       // variable-length decoder
  const int iq = graph.addCore("iq");         // inverse quantizer
  const int idct = graph.addCore("idct");
  const int mc = graph.addCore("mc");         // motion compensation
  const int pad = graph.addCore("pad");
  const int vop = graph.addCore("vop");       // reconstruction
  const int mem = graph.addCore("sdram");
  const int cpu = graph.addCore("risc");
  const int dma = graph.addCore("dma");
  const int disp = graph.addCore("display");

  graph.addFlow(vld, iq, 0.10);
  graph.addFlow(iq, idct, 0.10);
  graph.addFlow(idct, vop, 0.10);
  graph.addFlow(mc, vop, 0.08);
  graph.addFlow(pad, mc, 0.05);
  graph.addFlow(mem, mc, 0.15);
  graph.addFlow(mem, pad, 0.05);
  graph.addFlow(vop, mem, 0.15);
  graph.addFlow(mem, disp, 0.12);
  graph.addFlow(cpu, vld, 0.03);
  graph.addFlow(cpu, mem, 0.05);
  graph.addFlow(dma, mem, 0.08);
  return graph;
}

void report(const char* label, const noc::CoreGraph& graph,
            const noc::MappingResult& result, noc::MeshShape shape) {
  std::printf("%s: hop-bandwidth %.3f, worst predicted link load %.3f\n",
              label, result.hopBandwidth, result.maxLinkLoad);
  for (std::size_t core = 0; core < graph.cores.size(); ++core) {
    std::printf("  %-8s -> (%d,%d)\n", graph.cores[core].name.c_str(),
                result.placement[core].x, result.placement[core].y);
  }
  (void)shape;
}

}  // namespace

int main() {
  const noc::MeshShape shape{4, 4};
  const noc::CoreGraph graph = mpeg4ishGraph();
  noc::Mapper mapper(shape, /*seed=*/42);

  const noc::MappingResult greedy = mapper.mapGreedy(graph);
  report("greedy placement", graph, greedy, shape);
  const noc::MappingResult annealed = mapper.mapAnnealed(graph, 8000);
  report("annealed placement", graph, annealed, shape);
  std::printf("annealing improvement: %.1f%%\n\n",
              100.0 * (greedy.hopBandwidth - annealed.hopBandwidth) /
                  greedy.hopBandwidth);

  // Validate on the cycle-accurate mesh.
  noc::MeshConfig cfg;
  cfg.shape = shape;
  cfg.params.n = 16;
  cfg.params.p = 4;
  noc::Mesh mesh(cfg);
  auto replayers = noc::attachFlows(mesh, graph, annealed, 6, 7);
  mesh.run(20000);

  std::printf("cycle-accurate validation over %llu cycles (%s):\n",
              static_cast<unsigned long long>(mesh.simulator().cycle()),
              mesh.healthy() ? "healthy" : "UNHEALTHY");
  tech::Table table({"link", "predicted", "measured"});
  for (const auto& [link, predicted] : annealed.linkLoads) {
    char name[32], pred[16], meas[16];
    std::snprintf(name, sizeof name, "(%d,%d)->%s", link.from.x, link.from.y,
                  std::string(router::name(link.port)).c_str());
    std::snprintf(pred, sizeof pred, "%.3f", predicted);
    std::snprintf(meas, sizeof meas, "%.3f",
                  mesh.linkUtilization(link.from, link.port));
    table.addRow({name, pred, meas});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\npacket latency: mean %.1f, p99 %.1f cycles over %llu delivered\n",
      mesh.ledger().packetLatency().mean(),
      mesh.ledger().packetLatency().percentile(0.99),
      static_cast<unsigned long long>(mesh.ledger().delivered()));
  std::printf("\nlatency histogram:\n%s",
              mesh.ledger().packetLatency().histogram(12, 40).c_str());
  return 0;
}
