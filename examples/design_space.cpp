// Design-space exploration - the point of a *parameterized* soft-core:
// sweep (n, p, FIFO impl), report cost from the technology mapper, fmax
// from the timing model, and zero-load latency plus saturation throughput
// from the cycle-accurate mesh, so an SoC designer can pick the cheapest
// configuration that meets the application requirement ("allows the tuning
// of the NoC parameters in order to meet the requirements of the target
// application").
//
//   $ ./design_space
#include <cstdio>

#include "noc/mesh.hpp"
#include "softcore/elaborate.hpp"
#include "tech/mapper.hpp"
#include "tech/report.hpp"
#include "tech/timing.hpp"

using namespace rasoc;

namespace {

double saturationThroughput(const router::RouterParams& params) {
  noc::MeshConfig cfg;
  cfg.shape = noc::MeshShape{4, 4};
  cfg.params = params;
  noc::Mesh mesh(cfg);
  mesh.ledger().setWarmupCycles(500);
  noc::TrafficConfig traffic;
  traffic.offeredLoad = 1.0;  // saturating
  traffic.payloadFlits = 6;
  traffic.seed = 5;
  mesh.attachTraffic(traffic);
  mesh.run(3500);
  return mesh.ledger().throughputFlitsPerCyclePerNode(3000, 16);
}

}  // namespace

int main() {
  const tech::Flex10keMapper mapper;
  const tech::TimingModel timing;

  std::printf(
      "RASoC design-space exploration (4x4 mesh, uniform saturating "
      "traffic)\n'bandwidth' = saturation throughput x fmax x n = usable "
      "Mbit/s per node\n\n");

  tech::Table table({"n", "p", "FIFO", "router LC", "Reg", "Mem", "fmax MHz",
                     "sat fl/cy/node", "Mbit/s/node"});
  for (int n : {8, 16, 32}) {
    for (int p : {2, 4}) {
      for (router::FifoImpl impl :
           {router::FifoImpl::FlipFlop, router::FifoImpl::Eab}) {
        router::RouterParams params;
        params.n = n;
        params.p = p;
        params.fifoImpl = impl;
        const tech::Cost cost =
            softcore::elaborateRouter(params).totalCost(mapper);
        const double fmax =
            tech::routerFmaxMhz(timing, impl == router::FifoImpl::FlipFlop,
                                p);
        const double sat = saturationThroughput(params);
        char fmaxStr[32], satStr[32], bwStr[32];
        std::snprintf(fmaxStr, sizeof fmaxStr, "%.1f", fmax);
        std::snprintf(satStr, sizeof satStr, "%.3f", sat);
        std::snprintf(bwStr, sizeof bwStr, "%.0f", sat * fmax * n);
        table.addRow({std::to_string(n), std::to_string(p),
                      std::string(router::name(impl)),
                      std::to_string(cost.lc), std::to_string(cost.reg),
                      std::to_string(cost.mem), fmaxStr, satStr, bwStr});
      }
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nReading the table: EAB FIFOs buy the same cycle behaviour for "
      "fewer LCs;\nwider channels trade logic cells for bandwidth; deeper "
      "buffers mostly move\nthe saturation knee (see "
      "bench_noc_loadsweep).\n");
  return 0;
}
