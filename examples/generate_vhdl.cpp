// Soft-core generation: emit the parameterized VHDL model for a chosen
// configuration - the deliverable the paper itself describes in Section 3.
//
//   $ ./generate_vhdl [n] [m] [p] [ff|eab] [outdir]
//
// Writes one .vhd file per entity (Figure 7 hierarchy) plus a concrete
// instance baked to the chosen generics, and prints the elaborated cost
// summary the synthesis tables are built from.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "softcore/elaborate.hpp"
#include "softcore/vhdl_writer.hpp"
#include "tech/mapper.hpp"
#include "tech/report.hpp"

using namespace rasoc;

int main(int argc, char** argv) {
  router::RouterParams params;
  params.n = argc > 1 ? std::atoi(argv[1]) : 16;
  params.m = argc > 2 ? std::atoi(argv[2]) : 8;
  params.p = argc > 3 ? std::atoi(argv[3]) : 4;
  params.fifoImpl = (argc > 4 && std::strcmp(argv[4], "ff") == 0)
                        ? router::FifoImpl::FlipFlop
                        : router::FifoImpl::Eab;
  const std::filesystem::path outdir = argc > 5 ? argv[5] : "rasoc_vhdl";

  const softcore::VhdlWriter writer(params);
  std::filesystem::create_directories(outdir);
  for (const auto& [name, content] : writer.allFiles()) {
    std::ofstream file(outdir / name);
    file << content;
    std::printf("wrote %s (%zu bytes)\n", (outdir / name).c_str(),
                content.size());
  }

  const tech::Flex10keMapper mapper;
  const tech::Cost cost =
      softcore::elaborateRouter(params).totalCost(mapper);
  std::printf(
      "\nrasoc (n=%d, m=%d, p=%d, %s): estimated %s\n", params.n, params.m,
      params.p, std::string(router::name(params.fifoImpl)).c_str(),
      tech::utilizationSummary(mapper.device(), cost).c_str());
  return 0;
}
