// Motivation demo: why a NoC at all?  Runs the same multimedia-ish traffic
// over a PI-Bus-style shared bus and over a RASoC mesh and prints the
// crossover - the scenario the paper's introduction argues ("NoCs promise
// to be the better approach ... that will meet the communication
// requirements of future Systems-on-Chip").
//
//   $ ./bus_vs_noc [nodes_per_side]   (default 4)
#include <cstdio>
#include <cstdlib>

#include "baseline/bus.hpp"
#include "noc/mesh.hpp"
#include "sim/simulator.hpp"

using namespace rasoc;

int main(int argc, char** argv) {
  const int side = argc > 1 ? std::atoi(argv[1]) : 4;
  const noc::MeshShape shape{side, side};
  constexpr int kWarmup = 500;
  constexpr int kMeasure = 4000;

  std::printf(
      "%dx%d system, uniform traffic, 8-flit packets: shared bus vs RASoC "
      "mesh\n\n",
      side, side);
  std::printf("%-8s %-28s %-28s\n", "load", "bus (lat / thru)",
              "mesh (lat / thru)");

  for (double load : {0.01, 0.03, 0.05, 0.08, 0.12, 0.20}) {
    noc::TrafficConfig traffic;
    traffic.offeredLoad = load;
    traffic.payloadFlits = 6;
    traffic.seed = 31;

    baseline::SharedBus bus("bus", baseline::BusConfig{shape});
    bus.ledger().setWarmupCycles(kWarmup);
    bus.attachTraffic(traffic);
    sim::Simulator busSim;
    busSim.add(bus);
    busSim.reset();
    busSim.run(kWarmup + kMeasure);

    noc::MeshConfig cfg;
    cfg.shape = shape;
    cfg.params.n = 16;
    cfg.params.p = 4;
    noc::Mesh mesh(cfg);
    mesh.ledger().setWarmupCycles(kWarmup);
    mesh.attachTraffic(traffic);
    mesh.run(kWarmup + kMeasure);

    const int nodes = shape.nodes();
    std::printf("%-8.2f %8.1f cy / %.4f fl/cy/n %10.1f cy / %.4f fl/cy/n\n",
                load, bus.ledger().packetLatency().mean(),
                bus.ledger().throughputFlitsPerCyclePerNode(kMeasure, nodes),
                mesh.ledger().packetLatency().mean(),
                mesh.ledger().throughputFlitsPerCyclePerNode(kMeasure,
                                                             nodes));
  }

  std::printf(
      "\nThe bus saturates once the aggregate offered load nears one flit "
      "per cycle\n(1/%d per node); the mesh keeps latency bounded far past "
      "that point.\n",
      shape.nodes());
  return 0;
}
