// Quickstart: instantiate one RASoC router, push a packet in at the Local
// port, watch it come out East with its RIB decremented - the smallest
// possible use of the public API.
//
//   $ ./quickstart
#include <cstdio>

#include "router/flit.hpp"
#include "router/rasoc.hpp"
#include "sim/module.hpp"
#include "sim/simulator.hpp"

using namespace rasoc;

namespace {

// A minimal handshake driver/consumer pair, written out longhand so the
// example shows exactly what the channel protocol looks like.
class Producer : public sim::Module {
 public:
  Producer(std::string name, router::ChannelWires& ch,
           std::vector<router::Flit> flits)
      : Module(std::move(name)), ch_(&ch), flits_(std::move(flits)) {}

  bool done() const { return next_ >= flits_.size(); }

 protected:
  void evaluate() override {
    const bool sending = next_ < flits_.size();
    if (sending) {
      ch_->flit.data.set(flits_[next_].data);
      ch_->flit.bop.set(flits_[next_].bop);
      ch_->flit.eop.set(flits_[next_].eop);
    }
    ch_->val.set(sending);
  }
  void clockEdge() override {
    if (next_ < flits_.size() && ch_->val.get() && ch_->ack.get()) ++next_;
  }

 private:
  router::ChannelWires* ch_;
  std::vector<router::Flit> flits_;
  std::size_t next_ = 0;
};

class Consumer : public sim::Module {
 public:
  Consumer(std::string name, router::ChannelWires& ch)
      : Module(std::move(name)), ch_(&ch) {}

  const std::vector<router::Flit>& received() const { return received_; }

 protected:
  void evaluate() override { ch_->ack.set(ch_->val.get()); }
  void clockEdge() override {
    if (ch_->val.get() && ch_->ack.get())
      received_.push_back(router::Flit{ch_->flit.data.get(),
                                       ch_->flit.bop.get(),
                                       ch_->flit.eop.get()});
  }

 private:
  router::ChannelWires* ch_;
  std::vector<router::Flit> received_;
};

}  // namespace

int main() {
  // 1. Pick the soft-core generics: 16-bit flits, 8-bit RIB, 4-flit FIFOs.
  router::RouterParams params;
  params.n = 16;
  params.m = 8;
  params.p = 4;
  params.fifoImpl = router::FifoImpl::Eab;

  // 2. Instantiate the router and attach a producer at L-in and a consumer
  //    at E-out.
  router::Rasoc dut("rasoc", params);

  // A packet addressed two hops East: header RIB (dx=2, dy=0) + payload.
  const auto packet =
      router::makePacket(router::Rib{2, 0}, {0xc0de, 0xbeef, 0xf00d}, params);
  Producer producer("producer", dut.in(router::Port::Local), packet);
  Consumer consumer("consumer", dut.out(router::Port::East));

  sim::Simulator sim;
  sim.add(dut);
  sim.add(producer);
  sim.add(consumer);
  sim.reset();

  // 3. Clock until the trailer emerges.
  sim.runUntil(
      [&] {
        return !consumer.received().empty() &&
               consumer.received().back().eop;
      },
      200);

  // 4. Inspect the result.
  std::printf("cycles simulated: %llu\n",
              static_cast<unsigned long long>(sim.cycle()));
  for (const router::Flit& f : consumer.received()) {
    std::printf("  flit data=0x%04x bop=%d eop=%d", f.data, f.bop, f.eop);
    if (f.bop) {
      const router::Rib rib = router::decodeRib(f.data, params.m);
      std::printf("   <- header, residual RIB dx=%d dy=%d (was dx=2)",
                  rib.dx, rib.dy);
    }
    std::printf("\n");
  }
  std::printf("wormhole routing %s\n",
              consumer.received().size() == packet.size() &&
                      !dut.misrouteDetected()
                  ? "OK"
                  : "FAILED");
  return 0;
}
