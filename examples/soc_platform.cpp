// A small SoC platform on the RASoC NoC: two CPUs and a DMA engine issue
// memory-mapped reads/writes to two memory cores across a 3x3 mesh - the
// CASS-style platform simulation the paper's evaluation methodology builds
// on ("the cores attached to the NoC ... scalar processors, DSPs,
// controllers, memories").
//
//   $ ./soc_platform
#include <cstdio>

#include "noc/mesh.hpp"
#include "soc/transaction.hpp"

using namespace rasoc;
using noc::NodeId;

int main() {
  noc::MeshConfig cfg;
  cfg.shape = noc::MeshShape{3, 3};
  cfg.params.n = 16;
  cfg.params.p = 4;
  noc::Mesh mesh(cfg);

  // Memories at opposite corners; initiators spread over the mesh.
  soc::MemoryTarget ram0("ram0", mesh.ni(NodeId{2, 2}), mesh.shape(), 2,
                         256);
  soc::MemoryTarget ram1("ram1", mesh.ni(NodeId{0, 2}), mesh.shape(), 2,
                         256);
  soc::Initiator cpu0("cpu0", mesh.ni(NodeId{0, 0}), mesh.shape(),
                      NodeId{0, 0}, 4);
  soc::Initiator cpu1("cpu1", mesh.ni(NodeId{2, 0}), mesh.shape(),
                      NodeId{2, 0}, 4);
  soc::Initiator dma("dma", mesh.ni(NodeId{1, 1}), mesh.shape(),
                     NodeId{1, 1}, 8);
  mesh.simulator().add(ram0);
  mesh.simulator().add(ram1);
  mesh.simulator().add(cpu0);
  mesh.simulator().add(cpu1);
  mesh.simulator().add(dma);

  // cpu0: read-modify-write loop on ram0; cpu1: the same on ram1.
  for (std::uint32_t i = 0; i < 32; ++i) {
    cpu0.queue({true, NodeId{2, 2}, i, 0x100 + i});
    cpu0.queue({false, NodeId{2, 2}, i, 0});
    cpu1.queue({true, NodeId{0, 2}, i, 0x200 + i});
    cpu1.queue({false, NodeId{0, 2}, i, 0});
  }
  // dma: bulk stream alternating between both memories.
  for (std::uint32_t i = 0; i < 64; ++i) {
    dma.queue({true, i % 2 ? NodeId{2, 2} : NodeId{0, 2}, 128 + i / 2,
               0x300 + i});
  }

  const bool done = mesh.simulator().runUntil(
      [&] { return cpu0.done() && cpu1.done() && dma.done(); }, 100000);

  std::printf("platform run: %s in %llu cycles (%s)\n",
              done ? "completed" : "TIMED OUT",
              static_cast<unsigned long long>(mesh.simulator().cycle()),
              mesh.healthy() ? "healthy" : "UNHEALTHY");
  auto report = [](const char* name, const soc::Initiator& initiator) {
    std::printf(
        "  %-5s %3llu txns, %llu data errors, round-trip mean %5.1f p99 "
        "%5.1f cycles\n",
        name, static_cast<unsigned long long>(initiator.completed()),
        static_cast<unsigned long long>(initiator.dataErrors()),
        initiator.roundTrip().mean(), initiator.roundTrip().percentile(0.99));
  };
  report("cpu0", cpu0);
  report("cpu1", cpu1);
  report("dma", dma);
  std::printf(
      "  memories: ram0 %llu reads / %llu writes, ram1 %llu / %llu\n",
      static_cast<unsigned long long>(ram0.readsServed()),
      static_cast<unsigned long long>(ram0.writesServed()),
      static_cast<unsigned long long>(ram1.readsServed()),
      static_cast<unsigned long long>(ram1.writesServed()));
  std::printf("  ram0[3] = 0x%x (cpu0 wrote 0x%x)\n", ram0.peek(3),
              0x103);
  return done && mesh.healthy() ? 0 : 1;
}
