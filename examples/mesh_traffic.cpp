// A 4x4 RASoC mesh under synthetic traffic - the "building of
// networks-on-chip" use of the soft-core the paper describes.  Prints
// per-pattern latency/throughput and the busiest links.
//
//   $ ./mesh_traffic [load]            (default 0.15 flits/cycle/node)
#include <cstdio>
#include <cstdlib>

#include "noc/mesh.hpp"

using namespace rasoc;

int main(int argc, char** argv) {
  const double load = argc > 1 ? std::atof(argv[1]) : 0.15;
  constexpr int kWarmup = 500;
  constexpr int kMeasure = 4000;

  for (noc::TrafficPattern pattern :
       {noc::TrafficPattern::UniformRandom, noc::TrafficPattern::Transpose,
        noc::TrafficPattern::BitComplement, noc::TrafficPattern::HotSpot}) {
    noc::MeshConfig cfg;
    cfg.shape = noc::MeshShape{4, 4};
    cfg.params.n = 16;
    cfg.params.m = 8;
    cfg.params.p = 4;
    noc::Mesh mesh(cfg);
    mesh.ledger().setWarmupCycles(kWarmup);

    noc::TrafficConfig traffic;
    traffic.pattern = pattern;
    traffic.offeredLoad = load;
    traffic.payloadFlits = 6;
    traffic.seed = 2026;
    traffic.hotspot = noc::NodeId{2, 2};
    traffic.hotspotFraction = 0.4;
    mesh.attachTraffic(traffic);
    mesh.run(kWarmup + kMeasure);

    std::printf("pattern %-10s  load %.2f  ",
                std::string(noc::name(pattern)).c_str(), load);
    std::printf(
        "delivered %-6llu  lat mean %6.1f  p99 %6.1f  thru %.4f fl/cy/node  "
        "links mean %.3f max %.3f  %s\n",
        static_cast<unsigned long long>(mesh.ledger().delivered()),
        mesh.ledger().packetLatency().mean(),
        mesh.ledger().packetLatency().percentile(0.99),
        mesh.ledger().throughputFlitsPerCyclePerNode(kMeasure, 16),
        mesh.meanLinkUtilization(), mesh.maxLinkUtilization(),
        mesh.healthy() ? "healthy" : "UNHEALTHY");
  }
  return 0;
}
