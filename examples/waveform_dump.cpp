// Waveform capture: run a packet through one router and dump a VCD file
// viewable in GTKWave - the debugging workflow a VHDL user of the original
// soft-core would have with a commercial simulator.
//
//   $ ./waveform_dump [out.vcd]
#include <cstdio>
#include <fstream>

#include "router/flit.hpp"
#include "router/rasoc.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"

using namespace rasoc;

namespace {

// Minimal handshake driver (same shape as quickstart's).
class Driver : public sim::Module {
 public:
  Driver(std::string name, router::ChannelWires& ch,
         std::vector<router::Flit> flits)
      : Module(std::move(name)), ch_(&ch), flits_(std::move(flits)) {}

 protected:
  void evaluate() override {
    const bool sending = next_ < flits_.size();
    if (sending) {
      ch_->flit.data.set(flits_[next_].data);
      ch_->flit.bop.set(flits_[next_].bop);
      ch_->flit.eop.set(flits_[next_].eop);
    }
    ch_->val.set(sending);
  }
  void clockEdge() override {
    if (next_ < flits_.size() && ch_->val.get() && ch_->ack.get()) ++next_;
  }

 private:
  router::ChannelWires* ch_;
  std::vector<router::Flit> flits_;
  std::size_t next_ = 0;
};

class Sink : public sim::Module {
 public:
  Sink(std::string name, router::ChannelWires& ch)
      : Module(std::move(name)), ch_(&ch) {}

 protected:
  void evaluate() override { ch_->ack.set(ch_->val.get()); }

 private:
  router::ChannelWires* ch_;
};

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "rasoc.vcd";

  router::RouterParams params;
  params.n = 8;
  params.p = 2;
  router::Rasoc dut("rasoc", params);
  Driver driver("driver", dut.in(router::Port::Local),
                router::makePacket(router::Rib{1, 0},
                                   {0xa1, 0xb2, 0xc3, 0xd4}, params));
  Sink sink("sink", dut.out(router::Port::East));

  sim::Simulator sim;
  sim.add(dut);
  sim.add(driver);
  sim.add(sink);
  sim.reset();

  sim::VcdWriter vcd("rasoc");
  auto& lin = dut.in(router::Port::Local);
  auto& eout = dut.out(router::Port::East);
  vcd.addSignal("Lin.data", params.n,
                [&] { return static_cast<std::uint64_t>(lin.flit.data.get()); });
  vcd.addSignal("Lin.bop", 1, [&] { return lin.flit.bop.get() ? 1u : 0u; });
  vcd.addSignal("Lin.eop", 1, [&] { return lin.flit.eop.get() ? 1u : 0u; });
  vcd.addSignal("Lin.val", 1, [&] { return lin.val.get() ? 1u : 0u; });
  vcd.addSignal("Lin.ack", 1, [&] { return lin.ack.get() ? 1u : 0u; });
  vcd.addSignal("Eout.data", params.n, [&] {
    return static_cast<std::uint64_t>(eout.flit.data.get());
  });
  vcd.addSignal("Eout.bop", 1, [&] { return eout.flit.bop.get() ? 1u : 0u; });
  vcd.addSignal("Eout.eop", 1, [&] { return eout.flit.eop.get() ? 1u : 0u; });
  vcd.addSignal("Eout.val", 1, [&] { return eout.val.get() ? 1u : 0u; });
  vcd.addSignal("Eout.ack", 1, [&] { return eout.ack.get() ? 1u : 0u; });

  for (int cycle = 0; cycle < 20; ++cycle) {
    sim.settle();
    vcd.sample(sim.cycle());
    sim.tick();
  }

  std::ofstream out(path);
  out << vcd.render();
  std::printf("wrote %s (%zu signals, 20 cycles)\n", path,
              vcd.signalCount());
  std::printf(
      "open in GTKWave to see the wormhole: header enters Lin at cycle 0,\n"
      "emerges on Eout two cycles later, payload pipelined behind it.\n");
  return 0;
}
