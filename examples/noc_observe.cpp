// Observability tour: runs a 3x3 RASoC mesh under uniform random traffic
// with the telemetry subsystem attached, then prints per-router congestion
// and throughput heatmaps and the structured JSON run report.
//
// The report is deterministic: two runs with the same seed produce
// byte-identical JSON (`noc_observe 42 > a.json; noc_observe 42 > b.json;
// diff a.json b.json`).
//
// Usage: noc_observe [seed]
#include <cstdio>
#include <cstdlib>

#include "noc/mesh.hpp"
#include "noc/observe.hpp"
#include "noc/watchdog.hpp"

using namespace rasoc;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  noc::MeshConfig cfg;
  cfg.shape = noc::MeshShape{3, 3};
  cfg.params.n = 16;
  cfg.params.p = 4;
  noc::Mesh mesh(cfg);

  telemetry::MetricsRegistry registry;
  mesh.enableTelemetry(registry);

  noc::Watchdog watchdog("dog", mesh.ledger(), 500);
  mesh.simulator().add(watchdog);

  noc::TrafficConfig traffic;
  traffic.pattern = noc::TrafficPattern::UniformRandom;
  traffic.offeredLoad = 0.3;
  traffic.payloadFlits = 6;
  traffic.seed = seed;
  mesh.attachTraffic(traffic);

  mesh.run(2000);

  const std::uint64_t cycles = mesh.simulator().cycle();
  std::printf("== 3x3 mesh, uniform traffic, load %.2f, seed %llu, %llu "
              "cycles ==\n\n",
              traffic.offeredLoad, static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(cycles));

  const auto throughput =
      noc::throughputHeatmap(registry, cfg.shape, cycles);
  const auto congestion = noc::congestionHeatmap(registry, cfg.shape, cycles);
  const auto backpressure =
      noc::backpressureHeatmap(registry, cfg.shape, cycles);
  std::fputs(throughput.ascii().c_str(), stdout);
  std::printf("\n");
  std::fputs(congestion.ascii().c_str(), stdout);
  std::printf("\n");
  std::fputs(backpressure.ascii().c_str(), stdout);

  std::printf("\ncongestion CSV:\n%s", congestion.csv().c_str());

  telemetry::RunReport report =
      noc::buildRunReport("noc_observe", mesh, &watchdog);
  report.set("run", "seed", seed);
  report.set("run", "offered_load", traffic.offeredLoad);
  std::printf("\n%s", report.toJson().c_str());
  return 0;
}
