// Observability tour, in two acts:
//
//  1. A 3x3 RASoC mesh under uniform random traffic with the telemetry
//     subsystem attached: per-router congestion and throughput heatmaps
//     plus the structured JSON run report.
//  2. The same mesh under hotspot traffic with the flit-level flow tracer
//     enabled: the per-flow latency decomposition table shows where the
//     congestion tree around the hotspot costs cycles (hop_blocked), and
//     the run report gains its deterministic `trace` section.
//
// Everything printed is deterministic: two runs with the same seed produce
// byte-identical output (`noc_observe 42 > a.txt; noc_observe 42 > b.txt;
// diff a.txt b.txt`).
//
// Usage: noc_observe [seed]
#include <cstdio>
#include <cstdlib>

#include "noc/mesh.hpp"
#include "noc/observe.hpp"
#include "noc/watchdog.hpp"

using namespace rasoc;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  noc::MeshConfig cfg;
  cfg.shape = noc::MeshShape{3, 3};
  cfg.params.n = 16;
  cfg.params.p = 4;
  noc::Mesh mesh(cfg);

  telemetry::MetricsRegistry registry;
  mesh.enableTelemetry(registry);

  noc::Watchdog watchdog("dog", mesh.ledger(), 500);
  mesh.simulator().add(watchdog);

  noc::TrafficConfig traffic;
  traffic.pattern = noc::TrafficPattern::UniformRandom;
  traffic.offeredLoad = 0.3;
  traffic.payloadFlits = 6;
  traffic.seed = seed;
  mesh.attachTraffic(traffic);

  mesh.run(2000);

  const std::uint64_t cycles = mesh.simulator().cycle();
  std::printf("== 3x3 mesh, uniform traffic, load %.2f, seed %llu, %llu "
              "cycles ==\n\n",
              traffic.offeredLoad, static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(cycles));

  const auto throughput =
      noc::throughputHeatmap(registry, cfg.shape, cycles);
  const auto congestion = noc::congestionHeatmap(registry, cfg.shape, cycles);
  const auto backpressure =
      noc::backpressureHeatmap(registry, cfg.shape, cycles);
  std::fputs(throughput.ascii().c_str(), stdout);
  std::printf("\n");
  std::fputs(congestion.ascii().c_str(), stdout);
  std::printf("\n");
  std::fputs(backpressure.ascii().c_str(), stdout);

  std::printf("\ncongestion CSV:\n%s", congestion.csv().c_str());

  telemetry::RunReport report =
      noc::buildRunReport("noc_observe", mesh, &watchdog);
  report.set("run", "seed", seed);
  report.set("run", "offered_load", traffic.offeredLoad);
  std::printf("\n%s", report.toJson().c_str());

  // --- act 2: flit-traced hotspot run ------------------------------------
  // Every packet's lifecycle is reconstructed (NI queueing, per-hop buffer
  // residency, arbitration, ejection) and folded into a latency
  // decomposition whose components sum exactly to the end-to-end latency.
  noc::Mesh hotMesh(cfg);
  noc::FlowTracer& tracer = hotMesh.enableTracing();

  noc::TrafficConfig hotTraffic = traffic;
  hotTraffic.pattern = noc::TrafficPattern::HotSpot;
  hotTraffic.hotspot = noc::NodeId{1, 1};  // the mesh centre melts first
  hotTraffic.hotspotFraction = 0.5;
  hotMesh.attachTraffic(hotTraffic);

  hotMesh.run(2000);

  std::printf("\n== hotspot run (50%% of flows target node (1,1)), flit "
              "tracing on ==\n\n");
  std::printf("per-flow latency decomposition (cycles; %llu packets "
              "completed):\n%s",
              static_cast<unsigned long long>(tracer.packetsCompleted()),
              tracer.decompositionTable().c_str());
  std::printf(
      "\nsource_queue dominating means the NIs cannot inject (the hotspot\n"
      "column is saturated); hop_blocked is time parked in router buffers\n"
      "along the congestion tree.  Export the full timeline with\n"
      "FlowTracer::perfettoJson() and open it in ui.perfetto.dev.\n");

  telemetry::RunReport hotReport =
      noc::buildRunReport("noc_observe.hotspot", hotMesh, nullptr);
  hotReport.set("run", "seed", seed);
  std::printf("\n%s", hotReport.toJson().c_str());
  return 0;
}
