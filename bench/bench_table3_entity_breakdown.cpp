// Reproduces Table 3 of the paper: "Costs of bottom-level entities" - the
// per-entity share of LC / Reg / Mem for the 32-bit, 4-flit, EAB-based
// router.  Paper values: IRS 1/0/0, IC 8/0/0, IB 12/44/100, IFC 1/0/0,
// OFC 0/0/0, ORS 1/0/0, ODS 49/0/0, OC 28/56/0 (percent).
#include <cstdio>

#include <array>
#include <map>
#include <string>

#include "softcore/elaborate.hpp"
#include "softcore/netlists.hpp"
#include "tech/mapper.hpp"
#include "tech/report.hpp"

using namespace rasoc;

int main() {
  const tech::Flex10keMapper mapper;
  router::RouterParams params;
  params.n = 32;
  params.m = 8;
  params.p = 4;
  params.fifoImpl = router::FifoImpl::Eab;

  const softcore::Entity router = softcore::elaborateRouter(params);
  const tech::Cost total = router.totalCost(mapper);
  const auto grouped = router.costByAcronym(mapper);

  std::printf(
      "Table 3. Costs of bottom-level entities (reproduction).\n"
      "32-bit, 4-flit, EAB-based 5-port router. Totals: LC=%d Reg=%d "
      "Mem=%d\n\n",
      total.lc, total.reg, total.mem);

  const std::map<std::string, std::array<int, 3>> paperShares = {
      {"IRS", {1, 0, 0}},  {"IC", {8, 0, 0}},  {"IB", {12, 44, 100}},
      {"IFC", {1, 0, 0}},  {"OFC", {0, 0, 0}}, {"ORS", {1, 0, 0}},
      {"ODS", {49, 0, 0}}, {"OC", {28, 56, 0}}};

  tech::Table table({"Entity (5x)", "LC", "Reg", "Mem", "paper LC",
                     "paper Reg", "paper Mem"});
  for (const char* acronym :
       {"IRS", "IC", "IB", "IFC", "OFC", "ORS", "ODS", "OC"}) {
    tech::Cost cost;
    if (auto it = grouped.find(acronym); it != grouped.end())
      cost = it->second;
    const auto& paper = paperShares.at(acronym);
    table.addRow({acronym, tech::percent(cost.lc, total.lc),
                  tech::percent(cost.reg, total.reg),
                  tech::percent(cost.mem, total.mem),
                  std::to_string(paper[0]) + "%",
                  std::to_string(paper[1]) + "%",
                  std::to_string(paper[2]) + "%"});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nPaper observations reproduced:\n"
      " * \"the five output controllers are responsible for 28%% of the "
      "LCs\";\n"
      " * switches (ODS) dominate and cannot be reduced on this FPGA;\n"
      " * \"the only blocks that could be optimized ... are the "
      "controllers\".\n");

  // The paper's announced follow-up: "we are working to develop cheaper
  // versions for the router components in order to reduce RASoC costs."
  const tech::Cost optimized =
      mapper.map(softcore::routerNetlistOptimizedControllers(params));
  std::printf(
      "\nWhat-if (paper Section 5 future work): binary-encoded output\n"
      "controllers with shared priority logic -> LC %d -> %d (-%s), Reg "
      "%d -> %d.\n",
      total.lc, optimized.lc,
      tech::percent(total.lc - optimized.lc, total.lc).c_str(), total.reg,
      optimized.reg);
  return 0;
}
