// Reproduces the operating-frequency results of Section 4:
//  * EAB-based approach: ~56.7 MHz (average over configurations);
//  * FF-based approach: ~64 MHz for 2-flit buffers, dropping to ~55.8 MHz
//    at 4 flits "due to the multiplexer at the outputs of the buffers".
#include <cstdio>

#include "tech/report.hpp"
#include "tech/timing.hpp"

using namespace rasoc;

int main() {
  const tech::TimingModel model;

  std::printf("Maximum operating frequency (reproduction of Section 4).\n\n");
  tech::Table table({"FIFO", "depth", "LUT levels", "period (ns)",
                     "fmax (MHz)", "paper"});

  struct Row {
    bool ff;
    int p;
    const char* paper;
  };
  const Row rows[] = {{true, 2, "~64 MHz"},
                      {true, 4, "~55.8 MHz"},
                      {false, 2, "~56.7 MHz (avg)"},
                      {false, 4, "~56.7 MHz (avg)"}};
  for (const Row& row : rows) {
    const double levels =
        model.baseRouterLevels + tech::fifoReadLevels(model, row.ff, row.p);
    char lvl[32], per[32], mhz[32];
    std::snprintf(lvl, sizeof lvl, "%.1f", levels);
    std::snprintf(per, sizeof per, "%.1f", model.periodNs(levels));
    std::snprintf(mhz, sizeof mhz, "%.1f",
                  tech::routerFmaxMhz(model, row.ff, row.p));
    table.addRow({row.ff ? "FF-based" : "EAB-based", std::to_string(row.p),
                  lvl, per, mhz, row.paper});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nModel: period = %.1f ns fixed + %.1f ns per 4-LUT level; base "
      "router path\n= %.1f levels (buffer head -> routing decode -> "
      "grant-qualified read -> output\ndata switch -> handshake); EAB "
      "synchronous read = %.1f LUT-level equivalents.\n",
      model.fixedNs, model.levelNs, model.baseRouterLevels,
      model.eabReadLevels);

  std::printf("\nDeeper FF FIFOs (extension sweep):\n");
  for (int p : {2, 4, 8, 16}) {
    std::printf("  p=%-3d  FF %.1f MHz   EAB %.1f MHz\n", p,
                tech::routerFmaxMhz(model, true, p),
                tech::routerFmaxMhz(model, false, p));
  }
  return 0;
}
