// Reproduces Table 4 of the paper and its surrounding comparison: RASoC
// router cost as a fraction of the FemtoJava ASIP microcontroller.
// "Comparing these costs with the ones shown in Table 2 (for 8- and 16-bit
// configurations), one can see that the costs of RASoC vary from 31% to
// 56% of the costs of FemtoJava."
#include <algorithm>
#include <cstdio>

#include "femtojava/femtojava.hpp"
#include "tech/report.hpp"

using namespace rasoc;

int main() {
  std::printf("Table 4. Number of LCs for FemtoJava (reference anchors).\n\n");
  tech::Table anchors({"Data width", "LC", "source"});
  anchors.addRow({"8 bits", std::to_string(femtojava::kFemtoJava8.logicCells),
                  femtojava::kFemtoJava8.published
                      ? "published"
                      : "reconstructed (see src/femtojava)"});
  anchors.addRow({"16 bits",
                  std::to_string(femtojava::kFemtoJava16.logicCells),
                  "published (paper Table 4)"});
  std::fputs(anchors.render().c_str(), stdout);

  std::printf("\nRASoC vs FemtoJava (router LC / core LC):\n\n");
  tech::Table table({"width", "FIFO", "p", "router LC", "FemtoJava LC",
                     "ratio"});
  double lo = 1e9, hi = 0.0;
  for (int width : {8, 16}) {
    for (const auto& row : femtojava::comparisonSweep(width, {2, 4})) {
      table.addRow({std::to_string(width) + "-bit",
                    std::string(router::name(row.params.fifoImpl)),
                    std::to_string(row.params.p),
                    std::to_string(row.routerLc),
                    std::to_string(row.femtojavaLc),
                    tech::percent(row.ratio * 100.0, 100.0)});
      lo = std::min(lo, row.ratio);
      hi = std::max(hi, row.ratio);
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nMeasured band: %.0f%%-%.0f%% of FemtoJava (paper reports "
      "31%%-56%%;\nsee EXPERIMENTS.md for the discussion of the "
      "reconstructed 8-bit anchor).\n",
      lo * 100.0, hi * 100.0);
  return 0;
}
