// Extension experiment: latency/throughput characterization of a RASoC
// network across offered load, traffic patterns and buffer depths - the
// standard NoC evaluation the paper's follow-up work (SoCIN) publishes.
//
// The network topology is selectable (--topology=mesh|torus|ring, default
// mesh); all three use 16 nodes so the columns are directly comparable.
// Rings cannot express Transpose (non-square extent), so the ring sweep
// substitutes BitComplement, the equivalent long-haul permutation.
//
// The settle kernel is selectable too
// (--kernel=naive|event|parallel|compiled, default event; --threads=N
// sizes the parallel kernel's partition).  All kernels are cycle-exact
// against each other (tests/noc/kernel_trichotomy_test.cpp), so the sweep
// numbers are identical and the flag only changes wall-clock cost.
//
// Besides the human-readable tables, one fully instrumented run per
// traffic pattern is serialized as a machine-diffable RunReport JSON
// artifact (path: first non-flag argument, default
// bench_noc_loadsweep_report.json).
//
// --trace=<path> additionally traces the instrumented hotspot run at
// flit-level (noc/flow_trace.hpp) and writes the Chrome/Perfetto JSON
// there (open in ui.perfetto.dev); --trace-sample=K thins it to every
// K-th flow.  The export is schema-validated in-process before writing.
//
// --qos replaces the pattern sweep with the QoS isolation experiment
// (DESIGN.md section 13): a fixed low-rate Control flow shares the
// network with a Bulk flow swept past saturation, at 4 VCs with
// RouterParams::qosClasses on.  The table reports the Control-class p99
// against its unloaded baseline — the per-class isolation claim is that
// the ratio stays ~1 while Bulk saturates — plus a four-class mix at the
// heaviest load.  The JSON artifact carries the RunReport `qos` section.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "noc/network.hpp"
#include "noc/observe.hpp"
#include "noc/watchdog.hpp"
#include "tech/report.hpp"
#include "telemetry/trace_event.hpp"

using namespace rasoc;

namespace {

constexpr int kWarmup = 800;
constexpr int kMeasure = 3000;

std::string gTopology = "mesh";
std::string gKernel = "event";
int gThreads = 2;
int gVcs = 1;
bool gQos = false;
std::string gTracePath;  // empty = flit tracing off
std::uint64_t gTraceSample = 1;

std::shared_ptr<const noc::Topology> makeBenchTopology() {
  // 4x4 grid for mesh/torus, the same 16 nodes as a ring.
  return noc::makeTopology(gTopology, 4, 4);
}

sim::Simulator::Kernel benchKernel() {
  if (gKernel == "naive") return sim::Simulator::Kernel::Naive;
  if (gKernel == "parallel") return sim::Simulator::Kernel::ParallelEventDriven;
  if (gKernel == "compiled") return sim::Simulator::Kernel::Compiled;
  return sim::Simulator::Kernel::EventDriven;
}

noc::NetworkConfig benchConfig(int p, int vcs = 0) {
  noc::NetworkConfig cfg;
  cfg.params.n = 16;
  cfg.params.p = p;
  cfg.params.numVCs = vcs > 0 ? vcs : gVcs;
  cfg.params.qosClasses = gQos;
  // A 16-node ring routes offsets up to 14; the grids stay within 3.
  if (gTopology == "ring") cfg.params.m = 10;
  cfg.kernel = benchKernel();
  cfg.threads = gThreads;
  return cfg;
}

noc::TrafficConfig benchTraffic(noc::TrafficPattern pattern, double load) {
  noc::TrafficConfig traffic;
  traffic.pattern = pattern;
  traffic.offeredLoad = load;
  traffic.payloadFlits = 6;
  traffic.seed = 99;
  traffic.hotspot =
      gTopology == "ring" ? noc::NodeId{5, 0} : noc::NodeId{1, 1};
  traffic.hotspotFraction = 0.3;
  return traffic;
}

std::vector<noc::TrafficPattern> benchPatterns() {
  if (gTopology == "ring")
    return {noc::TrafficPattern::UniformRandom,
            noc::TrafficPattern::BitComplement,
            noc::TrafficPattern::HotSpot};
  return {noc::TrafficPattern::UniformRandom, noc::TrafficPattern::Transpose,
          noc::TrafficPattern::HotSpot};
}

struct Point {
  double latency;
  double throughput;
};

Point run(noc::TrafficPattern pattern, double load, int p, int vcs = 0) {
  auto topo = makeBenchTopology();
  noc::Network net(topo, benchConfig(p, vcs));
  net.ledger().setWarmupCycles(kWarmup);
  net.attachTraffic(benchTraffic(pattern, load));
  net.run(kWarmup + kMeasure);
  if (!net.healthy()) std::printf("!! unhealthy run\n");
  return {net.ledger().packetLatency().mean(),
          net.ledger().throughputFlitsPerCyclePerNode(kMeasure,
                                                      topo->nodes())};
}

std::string fmt(double v, const char* f = "%.2f") {
  char buf[32];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

// One instrumented run at the given load; returns the serialized report.
// When `traceJson` is non-null the run is flit-traced and the Perfetto
// export is stored there, with the kernel-profile counter sidecar in
// `kernelJson` (kernel-dependent by nature, hence the separate file).
std::string instrumentedReport(noc::TrafficPattern pattern, double load,
                               std::string* traceJson = nullptr,
                               std::string* kernelJson = nullptr) {
  noc::Network net(makeBenchTopology(), benchConfig(4));
  telemetry::MetricsRegistry registry;
  net.enableTelemetry(registry);
  noc::FlowTracer* tracer = nullptr;
  if (traceJson) {
    noc::TraceConfig traceConfig;
    traceConfig.sampleEvery = gTraceSample;
    tracer = &net.enableTracing(traceConfig);
  }
  noc::Watchdog watchdog("dog", net.ledger(), 500,
                         [&net] { return net.blockedLinkNames(); },
                         [&net] { return net.blockedLinkTraceDump(); });
  net.simulator().add(watchdog);
  net.ledger().setWarmupCycles(kWarmup);
  net.attachTraffic(benchTraffic(pattern, load));
  net.run(kWarmup + kMeasure);
  if (tracer) {
    *traceJson = tracer->perfettoJson();
    if (kernelJson) *kernelJson = tracer->kernelProfileJson();
  }
  telemetry::RunReport report = noc::buildRunReport(
      std::string("loadsweep.") + std::string(noc::name(pattern)), net,
      &watchdog);
  report.set("run", "offered_load", load);
  report.set("run", "seed", std::uint64_t{99});
  report.set("run", "kernel", gKernel);
  if (benchKernel() == sim::Simulator::Kernel::ParallelEventDriven)
    report.set("run", "threads", gThreads);
  return report.toJson();
}

// --- QoS isolation experiment (--qos) ---------------------------------

noc::FlowSpec qosFlow(router::TrafficClass cls, double load, int payload,
                      std::uint64_t seed) {
  noc::FlowSpec flow;
  flow.trafficClass = cls;
  flow.traffic.pattern = noc::TrafficPattern::UniformRandom;
  flow.traffic.offeredLoad = load;
  flow.traffic.payloadFlits = payload;
  flow.traffic.seed = seed;
  return flow;
}

// The probe flow: low-rate short Control packets whose tail latency the
// sweep defends.  The rate is far below any knee so its baseline p99 is a
// property of the topology, not of queueing.
noc::FlowSpec qosControlFlow() {
  return qosFlow(router::TrafficClass::Control, 0.02, 2, 99);
}

struct QosPoint {
  std::size_t ctrlCount;
  double ctrlP99;
  double ctrlMax;
  double bulkP99;
  std::uint64_t bulkDelivered;
  double throughput;
};

QosPoint runQos(const std::vector<noc::FlowSpec>& flows) {
  auto topo = makeBenchTopology();
  noc::Network net(topo, benchConfig(4, 4));
  net.ledger().setWarmupCycles(kWarmup);
  net.attachTraffic(flows);
  net.run(kWarmup + kMeasure);
  if (!net.healthy()) std::printf("!! unhealthy run\n");
  const auto& ctrl =
      net.ledger().packetLatency(router::TrafficClass::Control);
  const auto& bulk = net.ledger().packetLatency(router::TrafficClass::Bulk);
  return {ctrl.count(),
          ctrl.percentile(0.99),
          ctrl.max(),
          bulk.percentile(0.99),
          net.ledger().delivered(router::TrafficClass::Bulk),
          net.ledger().throughputFlitsPerCyclePerNode(kMeasure,
                                                      topo->nodes())};
}

std::string qosInstrumentedReport(const std::vector<noc::FlowSpec>& flows,
                                  double bulkLoad) {
  noc::Network net(makeBenchTopology(), benchConfig(4, 4));
  telemetry::MetricsRegistry registry;
  net.enableTelemetry(registry);
  noc::Watchdog watchdog("dog", net.ledger(), 500,
                         [&net] { return net.blockedLinkNames(); },
                         [&net] { return net.blockedLinkTraceDump(); });
  net.simulator().add(watchdog);
  net.ledger().setWarmupCycles(kWarmup);
  net.attachTraffic(flows);
  net.run(kWarmup + kMeasure);
  telemetry::RunReport report =
      noc::buildRunReport("loadsweep.qos", net, &watchdog);
  report.set("run", "control_load", 0.02);
  report.set("run", "bulk_load", bulkLoad);
  report.set("run", "seed", std::uint64_t{99});
  report.set("run", "kernel", gKernel);
  return report.toJson();
}

int runQosSweep(const std::string& path) {
  std::printf(
      "RASoC %s QoS isolation sweep (16 nodes, n=16, 4 VCs, qosClasses, "
      "%d measured cycles, %s kernel)\n\n",
      makeBenchTopology()->describe().c_str(), kMeasure, gKernel.c_str());

  // Unloaded baseline: the Control probe alone on an idle network.
  const QosPoint base = runQos({qosControlFlow()});
  std::printf("Control baseline (no competing traffic): p99=%.1f max=%.1f "
              "over %zu packets\n\n",
              base.ctrlP99, base.ctrlMax, base.ctrlCount);

  std::printf("--- Control probe vs Bulk flood (UniformRandom, p=4) ---\n");
  tech::Table table({"bulk load", "ctrl p99", "ctrl/base", "ctrl max",
                     "bulk p99", "bulk delivered", "thru"});
  bool isolated = true;
  for (double bulkLoad : {0.10, 0.30, 0.50, 0.70}) {
    const QosPoint point = runQos(
        {qosControlFlow(),
         qosFlow(router::TrafficClass::Bulk, bulkLoad, 6, 7)});
    const double ratio =
        base.ctrlP99 > 0.0 ? point.ctrlP99 / base.ctrlP99 : 0.0;
    if (ratio > 2.0) isolated = false;
    table.addRow({fmt(bulkLoad), fmt(point.ctrlP99, "%.1f"),
                  fmt(ratio), fmt(point.ctrlMax, "%.1f"),
                  fmt(point.bulkP99, "%.1f"), std::to_string(
                      static_cast<unsigned long long>(point.bulkDelivered)),
                  fmt(point.throughput, "%.4f")});
  }
  std::fputs(table.render().c_str(), stdout);
  if (!isolated) {
    std::printf("\n!! Control p99 exceeded 2x its unloaded baseline\n");
    return 1;
  }

  // Four-class mix at the heaviest load: per-class tails must respect the
  // priority order (control <= latency <= bulk/best-effort tails).
  std::printf("\n--- four-class mix (bulk+best-effort at 0.35 each) ---\n");
  {
    auto topo = makeBenchTopology();
    noc::Network net(topo, benchConfig(4, 4));
    net.ledger().setWarmupCycles(kWarmup);
    net.attachTraffic(std::vector<noc::FlowSpec>{
        qosFlow(router::TrafficClass::Control, 0.02, 2, 99),
        qosFlow(router::TrafficClass::Latency, 0.05, 2, 51),
        qosFlow(router::TrafficClass::Bulk, 0.35, 6, 7),
        qosFlow(router::TrafficClass::BestEffort, 0.35, 6, 13)});
    net.run(kWarmup + kMeasure);
    if (!net.healthy()) std::printf("!! unhealthy run\n");
    tech::Table mix({"class", "delivered", "lat mean", "lat p50",
                     "lat p99", "lat max"});
    for (int c = router::kNumTrafficClasses - 1; c >= 0; --c) {
      const auto cls = static_cast<router::TrafficClass>(c);
      const auto& lat = net.ledger().packetLatency(cls);
      mix.addRow({std::string(router::name(cls)),
                  std::to_string(static_cast<unsigned long long>(
                      net.ledger().delivered(cls))),
                  fmt(lat.mean()), fmt(lat.percentile(0.5)),
                  fmt(lat.percentile(0.99)), fmt(lat.max())});
    }
    std::fputs(mix.render().c_str(), stdout);
  }

  std::printf(
      "\nShape checks: the Control column is flat — its p99 stays within\n"
      "2x the unloaded baseline at every Bulk load, because Control owns\n"
      "the top adaptive lane (qosVcMask) and wins strict-priority output\n"
      "arbitration.  Bulk's own p99 explodes past its saturation knee; the\n"
      "starvation guard keeps it moving but absorbs all the queueing.\n");

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::printf("!! cannot write %s\n", path.c_str());
    return 1;
  }
  std::fputs("[\n", out);
  std::fputs(
      qosInstrumentedReport({qosControlFlow(),
                             qosFlow(router::TrafficClass::Bulk, 0.50, 6, 7)},
                            0.50)
          .c_str(),
      out);
  std::fputs("]\n", out);
  std::fclose(out);
  std::printf("\nRunReport JSON written to %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "bench_noc_loadsweep_report.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--topology=", 11) == 0) {
      gTopology = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--kernel=", 9) == 0) {
      gKernel = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      gThreads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--vcs=", 6) == 0) {
      gVcs = std::atoi(argv[i] + 6);
    } else if (std::strcmp(argv[i], "--qos") == 0) {
      gQos = true;
    } else if (std::strncmp(argv[i], "--trace-sample=", 15) == 0) {
      gTraceSample = std::strtoull(argv[i] + 15, nullptr, 10);
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      gTracePath = argv[i] + 8;
    } else {
      path = argv[i];
    }
  }
  if (gTraceSample < 1) {
    std::printf("--trace-sample=%llu must be >= 1\n",
                static_cast<unsigned long long>(gTraceSample));
    return 1;
  }
  if (gTopology != "mesh" && gTopology != "torus" && gTopology != "ring") {
    std::printf("unknown --topology=%s (mesh|torus|ring)\n",
                gTopology.c_str());
    return 1;
  }
  if (gKernel != "naive" && gKernel != "event" && gKernel != "parallel" &&
      gKernel != "compiled") {
    std::printf("unknown --kernel=%s (naive|event|parallel|compiled)\n",
                gKernel.c_str());
    return 1;
  }
  if (gThreads < 1) {
    std::printf("--threads=%d must be >= 1\n", gThreads);
    return 1;
  }
  if (gVcs != 1 && gVcs != 2 && gVcs != 4) {
    std::printf("--vcs=%d must be 1, 2 or 4\n", gVcs);
    return 1;
  }
  if (gVcs > 1 && !gTracePath.empty()) {
    std::printf("--trace is incompatible with --vcs>1 (flit tracing does "
                "not support virtual channels)\n");
    return 1;
  }
  if (gQos) {
    if (gVcs != 1 && gVcs != 4) {
      std::printf("--qos needs 4 VCs (escape layer + per-class adaptive "
                  "lanes); drop --vcs or pass --vcs=4\n");
      return 1;
    }
    if (!gTracePath.empty()) {
      std::printf("--trace is incompatible with --qos (QoS runs at 4 "
                  "VCs)\n");
      return 1;
    }
    gVcs = 4;
    return runQosSweep(path == "bench_noc_loadsweep_report.json"
                           ? "bench_noc_qos_report.json"
                           : path);
  }

  std::printf(
      "RASoC %s load sweep (16 nodes, n=16, 8-flit packets, %d measured "
      "cycles, %s kernel)\n\n",
      makeBenchTopology()->describe().c_str(), kMeasure, gKernel.c_str());

  for (noc::TrafficPattern pattern : benchPatterns()) {
    std::printf("--- pattern: %s ---\n",
                std::string(noc::name(pattern)).c_str());
    tech::Table table({"load", "lat p=2", "thru p=2", "lat p=4", "thru p=4",
                       "lat p=8", "thru p=8"});
    for (double load : {0.02, 0.05, 0.10, 0.20, 0.35, 0.50}) {
      std::vector<std::string> row{fmt(load)};
      for (int p : {2, 4, 8}) {
        const Point point = run(pattern, load, p);
        row.push_back(fmt(point.latency));
        row.push_back(fmt(point.throughput, "%.4f"));
      }
      table.addRow(row);
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }

  // Virtual-channel latency-throughput comparison (EXPERIMENTS.md): the
  // same sweep at VC counts 1, 2 and 4.  On the wrapping topologies VC >= 2
  // also switches the routes from non-wrapping to minimal-with-escape, so
  // the ring/torus rows show the wrap shortcut, not just the extra lanes.
  std::printf("--- virtual channels (UniformRandom, p=4) ---\n");
  {
    tech::Table table({"load", "lat vc1", "thru vc1", "lat vc2", "thru vc2",
                       "lat vc4", "thru vc4"});
    for (double load : {0.05, 0.20, 0.35, 0.50}) {
      std::vector<std::string> row{fmt(load)};
      for (int vcs : {1, 2, 4}) {
        const Point point =
            run(noc::TrafficPattern::UniformRandom, load, 4, vcs);
        row.push_back(fmt(point.latency));
        row.push_back(fmt(point.throughput, "%.4f"));
      }
      table.addRow(row);
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }

  std::printf(
      "Shape checks: latency is flat near the zero-load value until the\n"
      "saturation knee, deeper buffers push the knee to higher loads, and\n"
      "hotspot traffic saturates earliest.  Torus wrap links cut the mean\n"
      "distance, so its knee sits at a higher load than the mesh; the ring\n"
      "has the least bisection and saturates first.\n");

  // JSON artifact: one instrumented mid-load run per pattern, concatenated
  // as a JSON array.
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::printf("!! cannot write %s\n", path.c_str());
    return 1;
  }
  std::fputs("[\n", out);
  bool first = true;
  std::string traceJson;
  std::string kernelJson;
  for (noc::TrafficPattern pattern : benchPatterns()) {
    if (!first) std::fputs(",\n", out);
    // The hotspot run is the interesting one to trace: its congestion tree
    // shows up as hop_blocked time on the flow tracks.
    const bool traceThis =
        !gTracePath.empty() && pattern == noc::TrafficPattern::HotSpot;
    std::fputs(instrumentedReport(pattern, 0.20,
                                  traceThis ? &traceJson : nullptr,
                                  traceThis ? &kernelJson : nullptr)
                   .c_str(),
               out);
    first = false;
  }
  std::fputs("]\n", out);
  std::fclose(out);
  std::printf("\nRunReport JSON written to %s\n", path.c_str());

  if (!gTracePath.empty()) {
    std::string error;
    if (!telemetry::validatePerfettoJson(traceJson, &error)) {
      std::printf("!! Perfetto trace failed schema validation: %s\n",
                  error.c_str());
      return 1;
    }
    std::FILE* traceOut = std::fopen(gTracePath.c_str(), "w");
    if (!traceOut) {
      std::printf("!! cannot write %s\n", gTracePath.c_str());
      return 1;
    }
    std::fputs(traceJson.c_str(), traceOut);
    std::fclose(traceOut);
    std::printf("Perfetto trace written to %s (%zu bytes, sample=%llu)\n",
                gTracePath.c_str(), traceJson.size(),
                static_cast<unsigned long long>(gTraceSample));

    // Kernel-profile counters go in a sidecar: they are a property of the
    // settle kernel, so keeping them out of the machine trace preserves
    // its byte-identity across --kernel choices.
    const std::string kernelPath = gTracePath + ".kernel.json";
    if (!telemetry::validatePerfettoJson(kernelJson, &error)) {
      std::printf("!! kernel-profile sidecar failed schema validation: %s\n",
                  error.c_str());
      return 1;
    }
    std::FILE* kernelOut = std::fopen(kernelPath.c_str(), "w");
    if (!kernelOut) {
      std::printf("!! cannot write %s\n", kernelPath.c_str());
      return 1;
    }
    std::fputs(kernelJson.c_str(), kernelOut);
    std::fclose(kernelOut);
    std::printf("Kernel-profile sidecar written to %s (%zu bytes)\n",
                kernelPath.c_str(), kernelJson.size());
  }
  return 0;
}
