// Extension experiment: latency/throughput characterization of a RASoC
// mesh across offered load, traffic patterns and buffer depths - the
// standard NoC evaluation the paper's follow-up work (SoCIN) publishes.
//
// Besides the human-readable tables, one fully instrumented run per
// traffic pattern is serialized as a machine-diffable RunReport JSON
// artifact (path: argv[1], default bench_noc_loadsweep_report.json).
#include <cstdio>
#include <string>

#include "noc/mesh.hpp"
#include "noc/observe.hpp"
#include "noc/watchdog.hpp"
#include "tech/report.hpp"

using namespace rasoc;

namespace {

constexpr int kWarmup = 800;
constexpr int kMeasure = 3000;

struct Point {
  double latency;
  double throughput;
};

Point run(noc::TrafficPattern pattern, double load, int p) {
  noc::MeshConfig cfg;
  cfg.shape = noc::MeshShape{4, 4};
  cfg.params.n = 16;
  cfg.params.p = p;
  noc::Mesh mesh(cfg);
  mesh.ledger().setWarmupCycles(kWarmup);
  noc::TrafficConfig traffic;
  traffic.pattern = pattern;
  traffic.offeredLoad = load;
  traffic.payloadFlits = 6;
  traffic.seed = 99;
  traffic.hotspot = noc::NodeId{1, 1};
  traffic.hotspotFraction = 0.3;
  mesh.attachTraffic(traffic);
  mesh.run(kWarmup + kMeasure);
  if (!mesh.healthy()) std::printf("!! unhealthy run\n");
  return {mesh.ledger().packetLatency().mean(),
          mesh.ledger().throughputFlitsPerCyclePerNode(kMeasure, 16)};
}

std::string fmt(double v, const char* f = "%.2f") {
  char buf[32];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

// One instrumented run at the given load; returns the serialized report.
std::string instrumentedReport(noc::TrafficPattern pattern, double load) {
  noc::MeshConfig cfg;
  cfg.shape = noc::MeshShape{4, 4};
  cfg.params.n = 16;
  cfg.params.p = 4;
  noc::Mesh mesh(cfg);
  telemetry::MetricsRegistry registry;
  mesh.enableTelemetry(registry);
  noc::Watchdog watchdog("dog", mesh.ledger(), 500);
  mesh.simulator().add(watchdog);
  mesh.ledger().setWarmupCycles(kWarmup);
  noc::TrafficConfig traffic;
  traffic.pattern = pattern;
  traffic.offeredLoad = load;
  traffic.payloadFlits = 6;
  traffic.seed = 99;
  traffic.hotspot = noc::NodeId{1, 1};
  traffic.hotspotFraction = 0.3;
  mesh.attachTraffic(traffic);
  mesh.run(kWarmup + kMeasure);
  telemetry::RunReport report = noc::buildRunReport(
      std::string("loadsweep.") + std::string(noc::name(pattern)), mesh,
      &watchdog);
  report.set("run", "offered_load", load);
  report.set("run", "seed", traffic.seed);
  return report.toJson();
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "RASoC 4x4 mesh load sweep (n=16, 8-flit packets, %d measured "
      "cycles)\n\n",
      kMeasure);

  for (noc::TrafficPattern pattern :
       {noc::TrafficPattern::UniformRandom, noc::TrafficPattern::Transpose,
        noc::TrafficPattern::HotSpot}) {
    std::printf("--- pattern: %s ---\n",
                std::string(noc::name(pattern)).c_str());
    tech::Table table({"load", "lat p=2", "thru p=2", "lat p=4", "thru p=4",
                       "lat p=8", "thru p=8"});
    for (double load : {0.02, 0.05, 0.10, 0.20, 0.35, 0.50}) {
      std::vector<std::string> row{fmt(load)};
      for (int p : {2, 4, 8}) {
        const Point point = run(pattern, load, p);
        row.push_back(fmt(point.latency));
        row.push_back(fmt(point.throughput, "%.4f"));
      }
      table.addRow(row);
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }

  std::printf(
      "Shape checks: latency is flat near the zero-load value until the\n"
      "saturation knee, deeper buffers push the knee to higher loads, and\n"
      "hotspot traffic saturates earliest.\n");

  // JSON artifact: one instrumented mid-load run per pattern, concatenated
  // as a JSON array.
  const std::string path =
      argc > 1 ? argv[1] : "bench_noc_loadsweep_report.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::printf("!! cannot write %s\n", path.c_str());
    return 1;
  }
  std::fputs("[\n", out);
  bool first = true;
  for (noc::TrafficPattern pattern :
       {noc::TrafficPattern::UniformRandom, noc::TrafficPattern::Transpose,
        noc::TrafficPattern::HotSpot}) {
    if (!first) std::fputs(",\n", out);
    std::fputs(instrumentedReport(pattern, 0.20).c_str(), out);
    first = false;
  }
  std::fputs("]\n", out);
  std::fclose(out);
  std::printf("\nRunReport JSON written to %s\n", path.c_str());
  return 0;
}
