// Ablation: handshake link flow control (the paper's choice) vs the
// credit-based OFC replacement it sketches in Section 2.2.
//
// Two observations:
//  1. Cycle behaviour: both protocols sustain one flit per cycle per link
//     in this model (the handshake ack is combinational), so delivered
//     traffic and cycle-latency match closely.
//  2. Timing: the handshake's flit transfer closes a combinational loop
//     across the link (val out, ack back) inside one cycle, while credits
//     only cross the link once.  Folding the extra link traversal into the
//     critical path (+1.5 LUT-level equivalents for the return trip, vs
//     +0.5 for the credit counter compare) shows the real-frequency
//     benefit a credit-based OFC buys.
#include <cstdio>

#include "noc/mesh.hpp"
#include "tech/report.hpp"
#include "tech/timing.hpp"

using namespace rasoc;

namespace {

constexpr int kWarmup = 800;
constexpr int kMeasure = 4000;

struct Result {
  double latency;
  double throughput;
  bool healthy;
};

Result run(router::FlowControl fc, double load) {
  noc::MeshConfig cfg;
  cfg.shape = noc::MeshShape{4, 4};
  cfg.params.n = 16;
  cfg.params.p = 4;
  cfg.params.flowControl = fc;
  noc::Mesh mesh(cfg);
  mesh.ledger().setWarmupCycles(kWarmup);
  noc::TrafficConfig traffic;
  traffic.offeredLoad = load;
  traffic.payloadFlits = 6;
  traffic.seed = 7;
  mesh.attachTraffic(traffic);
  mesh.run(kWarmup + kMeasure);
  return {mesh.ledger().packetLatency().mean(),
          mesh.ledger().throughputFlitsPerCyclePerNode(kMeasure, 16),
          mesh.healthy()};
}

std::string fmt(double v, const char* f = "%.2f") {
  char buf[32];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

}  // namespace

int main() {
  std::printf(
      "Flow-control ablation: handshake OFC vs credit-based OFC\n"
      "4x4 mesh, uniform traffic, n=16, p=4, %d measured cycles\n\n",
      kMeasure);

  tech::Table table({"load", "hs lat", "hs thru", "credit lat",
                     "credit thru"});
  bool healthy = true;
  for (double load : {0.05, 0.10, 0.20, 0.35}) {
    const Result hs = run(router::FlowControl::Handshake, load);
    const Result cr = run(router::FlowControl::CreditBased, load);
    healthy = healthy && hs.healthy && cr.healthy;
    table.addRow({fmt(load), fmt(hs.latency), fmt(hs.throughput, "%.4f"),
                  fmt(cr.latency), fmt(cr.throughput, "%.4f")});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("all runs healthy: %s\n\n", healthy ? "yes" : "NO");

  // Timing view: the handshake val->ack round trip is on the transfer
  // critical path; credits replace it with a local counter compare.
  const tech::TimingModel model;
  const double handshakeLevels = model.baseRouterLevels +
                                 model.eabReadLevels + 1.5;
  const double creditLevels = model.baseRouterLevels + model.eabReadLevels +
                              0.5;
  std::printf(
      "Critical-path view (EAB FIFOs):\n"
      "  handshake: %.1f levels -> %.1f MHz\n"
      "  credit:    %.1f levels -> %.1f MHz\n"
      "Equal flits/cycle + higher clock => credit-based links carry ~%.0f%% "
      "more\nbandwidth, at the cost of the counter logic the elaborator "
      "charges the OFC.\n",
      handshakeLevels, model.fmaxMhz(handshakeLevels), creditLevels,
      model.fmaxMhz(creditLevels),
      (model.fmaxMhz(creditLevels) / model.fmaxMhz(handshakeLevels) - 1.0) *
          100.0);
  return 0;
}
