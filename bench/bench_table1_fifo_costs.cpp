// Reproduces Table 1 of the paper: "Costs of buffers" - LC / Reg / Mem for
// the two FIFO implementations across n in {8,16,32} and p in {2,4} flits.
// Each buffer position is (n+2) bits wide.
#include <cstdio>

#include "softcore/elaborate.hpp"
#include "tech/mapper.hpp"
#include "tech/report.hpp"

using namespace rasoc;

int main() {
  const tech::Flex10keMapper mapper;

  std::printf("Table 1. Costs of buffers (reproduction).\n");
  std::printf("Paper: RASoC (DATE 2004), Section 4. Device: %s\n\n",
              std::string(mapper.device().name).c_str());

  tech::Table table({"FIFO", "width", "LC(p=2)", "Reg(p=2)", "Mem(p=2)",
                     "LC(p=4)", "Reg(p=4)", "Mem(p=4)"});

  for (router::FifoImpl impl :
       {router::FifoImpl::FlipFlop, router::FifoImpl::Eab}) {
    for (int n : {8, 16, 32}) {
      std::vector<std::string> row;
      row.push_back(std::string(router::name(impl)));
      row.push_back(std::to_string(n) + "-bit");
      for (int p : {2, 4}) {
        router::RouterParams params;
        params.n = n;
        params.p = p;
        params.fifoImpl = impl;
        const tech::Cost cost =
            softcore::elaborateFifo(params).totalCost(mapper);
        row.push_back(std::to_string(cost.lc));
        row.push_back(std::to_string(cost.reg));
        row.push_back(std::to_string(cost.mem));
      }
      table.addRow(row);
    }
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nRelational checks from the paper's text (asserted in "
      "tests/tech/table_relations_test):\n"
      " * FF LC grows with depth AND width (head mux, Figure 9);\n"
      " * EAB LC is smaller and grows only with depth (pointers);\n"
      " * EAB Reg is width-independent (pointers only);\n"
      " * EAB Mem = (n+2) x p bits exactly.\n");
  return 0;
}
