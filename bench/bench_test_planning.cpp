// SoC test planning over the RASoC NoC (the paper's second named
// application area).  Compares a dedicated-serial-TAM-style baseline
// against NoC-based schedules with 1, 2 and 4 ATE access ports, with and
// without a power budget, and validates the analytical makespans on the
// cycle-accurate mesh.
#include <cstdio>

#include "tech/report.hpp"
#include "testplan/executor.hpp"

using namespace rasoc;
using namespace rasoc::testplan;

namespace {

std::vector<CoreTestSpec> socCores() {
  auto core = [](const char* name, int x, int y, int packets, int bist,
                 double power) {
    CoreTestSpec spec;
    spec.name = name;
    spec.location = noc::NodeId{x, y};
    spec.testPackets = packets;
    spec.payloadFlits = 8;
    spec.bistCycles = bist;
    spec.power = power;
    return spec;
  };
  // A 10-core SoC with heterogeneous, delivery-dominated test loads
  // (large scan-vector sets streamed through the NoC, moderate BIST
  // tails) - the regime where test access bandwidth is the bottleneck.
  return {
      core("risc", 1, 0, 60, 160, 2.0), core("dsp", 2, 0, 50, 120, 2.0),
      core("sdram", 1, 1, 100, 300, 1.5), core("usb", 2, 1, 20, 40, 1.0),
      core("vld", 1, 2, 30, 70, 1.0),   core("idct", 2, 2, 40, 80, 1.5),
      core("mac", 0, 1, 25, 50, 1.0),   core("aes", 3, 1, 35, 60, 1.0),
      core("adc", 0, 2, 15, 30, 0.5),   core("gpio", 3, 2, 10, 20, 0.5),
  };
}

TestPlanConfig config(std::vector<noc::NodeId> ports, double power) {
  TestPlanConfig cfg;
  cfg.accessPorts = std::move(ports);
  cfg.powerBudget = power;
  cfg.params.n = 16;
  cfg.params.p = 4;
  return cfg;
}

std::uint64_t execute(const TestPlanConfig& cfg,
                      const std::vector<CoreTestSpec>& cores,
                      const TestSchedule& schedule) {
  noc::MeshConfig meshCfg;
  meshCfg.shape = noc::MeshShape{4, 4};
  meshCfg.params = cfg.params;
  noc::Mesh mesh(meshCfg);
  const ExecutionResult result =
      runSchedule(mesh, cores, schedule, cfg, 200000);
  if (!result.completed || !result.healthy) {
    std::printf("!! execution failed\n");
    return 0;
  }
  return result.measuredMakespan;
}

}  // namespace

int main() {
  const auto cores = socCores();
  const double inf = std::numeric_limits<double>::infinity();

  std::printf(
      "SoC test planning on a 4x4 RASoC NoC (10 BISTed cores)\n"
      "makespan in cycles; 'measured' = cycle-accurate replay\n\n");

  tech::Table table(
      {"configuration", "planned", "measured", "vs serial TAM"});

  const TestPlanConfig serialCfg = config({noc::NodeId{0, 0}}, inf);
  TestPlanner serialPlanner(serialCfg);
  const TestSchedule serial = serialPlanner.sequentialBaseline(cores);
  const std::uint64_t serialMeasured = execute(serialCfg, cores, serial);
  table.addRow({"serial TAM baseline (1 port)",
                std::to_string(serial.makespan),
                std::to_string(serialMeasured), "1.00x"});

  struct Scenario {
    const char* label;
    std::vector<noc::NodeId> ports;
    double power;
  };
  const Scenario scenarios[] = {
      {"NoC schedule, 1 port", {noc::NodeId{0, 0}}, inf},
      {"NoC schedule, 2 ports", {noc::NodeId{0, 0}, noc::NodeId{3, 3}}, inf},
      {"NoC schedule, 4 ports",
       {noc::NodeId{0, 0}, noc::NodeId{3, 3}, noc::NodeId{0, 3},
        noc::NodeId{3, 0}},
       inf},
      {"NoC schedule, 4 ports, power <= 4.0",
       {noc::NodeId{0, 0}, noc::NodeId{3, 3}, noc::NodeId{0, 3},
        noc::NodeId{3, 0}},
       4.0},
  };
  for (const Scenario& scenario : scenarios) {
    const TestPlanConfig cfg = config(scenario.ports, scenario.power);
    TestPlanner planner(cfg);
    const TestSchedule schedule = planner.plan(cores);
    const std::uint64_t measured = execute(cfg, cores, schedule);
    char speedup[16];
    std::snprintf(speedup, sizeof speedup, "%.2fx",
                  static_cast<double>(serial.makespan) /
                      static_cast<double>(schedule.makespan));
    table.addRow({scenario.label, std::to_string(schedule.makespan),
                  std::to_string(measured), speedup});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nShape checks: overlapping BIST tails with the next delivery "
      "already beats\nthe serial TAM on one port; extra access ports and "
      "the NoC's parallelism\ncompound it; the power cap trades some of "
      "that speedup back.\n");
  return 0;
}
