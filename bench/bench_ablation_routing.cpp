// Ablation: XY (the paper's routing choice) vs YX dimension order.
//
// Both are deterministic, minimal and deadlock-free, and carry identical
// volumes on symmetric patterns; the difference is *where* the load lands.
// Under a column hotspot, XY funnels traffic through the hot column's
// vertical links while YX spreads the approach over the hot row, and vice
// versa - the kind of pattern/algorithm interaction a parameterized
// soft-core lets a designer tune per application.
#include <cstdio>

#include "noc/mesh.hpp"
#include "tech/report.hpp"

using namespace rasoc;

namespace {

constexpr int kWarmup = 800;
constexpr int kMeasure = 4000;

struct Result {
  double latency;
  double throughput;
  double maxLink;
};

Result run(router::RoutingAlgorithm routing, noc::TrafficPattern pattern,
           double load) {
  noc::MeshConfig cfg;
  cfg.shape = noc::MeshShape{4, 4};
  cfg.params.n = 16;
  cfg.params.p = 4;
  cfg.params.routing = routing;
  noc::Mesh mesh(cfg);
  mesh.ledger().setWarmupCycles(kWarmup);
  noc::TrafficConfig traffic;
  traffic.pattern = pattern;
  traffic.offeredLoad = load;
  traffic.payloadFlits = 6;
  traffic.seed = 33;
  traffic.hotspot = noc::NodeId{3, 1};
  traffic.hotspotFraction = 0.5;
  mesh.attachTraffic(traffic);
  mesh.run(kWarmup + kMeasure);
  return {mesh.ledger().packetLatency().mean(),
          mesh.ledger().throughputFlitsPerCyclePerNode(kMeasure, 16),
          mesh.maxLinkUtilization()};
}

std::string fmt(double v, const char* f = "%.2f") {
  char buf[32];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

}  // namespace

int main() {
  std::printf(
      "Routing ablation: XY vs YX dimension order (4x4, n=16, p=4)\n\n");

  for (noc::TrafficPattern pattern :
       {noc::TrafficPattern::UniformRandom, noc::TrafficPattern::Transpose,
        noc::TrafficPattern::HotSpot}) {
    std::printf("--- pattern: %s ---\n",
                std::string(noc::name(pattern)).c_str());
    tech::Table table({"load", "XY lat", "XY thru", "XY maxlink", "YX lat",
                       "YX thru", "YX maxlink"});
    for (double load : {0.05, 0.15, 0.30}) {
      const Result xy = run(router::RoutingAlgorithm::XY, pattern, load);
      const Result yx = run(router::RoutingAlgorithm::YX, pattern, load);
      table.addRow({fmt(load), fmt(xy.latency), fmt(xy.throughput, "%.4f"),
                    fmt(xy.maxLink, "%.3f"), fmt(yx.latency),
                    fmt(yx.throughput, "%.4f"), fmt(yx.maxLink, "%.3f")});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }

  std::printf(
      "Shape checks: symmetric patterns (uniform, transpose) show matched\n"
      "throughput for both orders; the off-centre hotspot shifts which "
      "links\nsaturate first (compare the maxlink columns).\n");
  return 0;
}
