// Regenerates Figure 7 of the paper: the hierarchy of entities in the
// soft-core model, with generics resolved and per-entity mapped costs -
// demonstrating "the automatic building of instances with different sizes".
#include <cstdio>

#include "softcore/elaborate.hpp"
#include "tech/mapper.hpp"

using namespace rasoc;

namespace {

void dump(const char* title, const router::RouterParams& params) {
  const tech::Flex10keMapper mapper;
  std::printf("=== %s ===\n", title);
  const softcore::Entity router = softcore::elaborateRouter(params);
  std::fputs(router.renderTree(mapper).c_str(), stdout);
  std::printf("entities: %d\n\n", router.entityCount());
}

}  // namespace

int main() {
  std::printf(
      "Figure 7 (reproduction): hierarchy of entities in the RASoC "
      "soft-core.\n"
      "rasoc(n,m,p) -> 5x input_channel(n,m,p){IFC,IB,IC,IRS} +\n"
      "                5x output_channel(n){OC,ODS,ORS,OFC}\n\n");

  router::RouterParams small;
  small.n = 8;
  small.m = 8;
  small.p = 2;
  small.fifoImpl = router::FifoImpl::FlipFlop;
  dump("rasoc (n=8, m=8, p=2, FF FIFOs) - full 5-port instance", small);

  router::RouterParams large;
  large.n = 32;
  large.m = 8;
  large.p = 4;
  large.fifoImpl = router::FifoImpl::Eab;
  dump("rasoc (n=32, m=8, p=4, EAB FIFOs) - the Table 3 configuration",
       large);

  router::RouterParams corner = large;
  corner.portMask = (1u << router::index(router::Port::Local)) |
                    (1u << router::index(router::Port::North)) |
                    (1u << router::index(router::Port::East));
  dump("rasoc corner instance (L, N, E only) - mesh-edge pruning", corner);

  {
    const tech::Flex10keMapper mapper;
    std::printf(
        "=== Graphviz rendering of the corner instance (pipe into `dot "
        "-Tsvg`) ===\n%s",
        softcore::elaborateRouter(corner).renderDot(mapper).c_str());
  }
  return 0;
}
