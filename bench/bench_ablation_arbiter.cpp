// Ablation: round-robin (the paper's choice) vs fixed-priority output
// arbitration under hot-spot traffic.
//
// With finite injection queues, starvation shows up as *service inequality*
// across the sources competing for the hot router, so the headline metric
// is Jain's fairness index over per-node delivered-packet counts
// (1.0 = perfectly fair, 1/N = one node monopolizes), plus the min/max
// service ratio and the latency tail.
#include <cstdio>

#include "noc/mesh.hpp"
#include "tech/report.hpp"

using namespace rasoc;

namespace {

constexpr int kWarmup = 800;
constexpr int kMeasure = 5000;

struct Result {
  double fairness;     // Jain's index over per-node packetsSent
  double minMaxRatio;  // worst node / best node service
  double p99;
  std::uint64_t delivered;
};

Result run(router::ArbiterKind kind, double load) {
  noc::MeshConfig cfg;
  cfg.shape = noc::MeshShape{4, 4};
  cfg.params.n = 16;
  cfg.params.p = 4;
  cfg.arbiter = kind;
  noc::Mesh mesh(cfg);
  mesh.ledger().setWarmupCycles(kWarmup);
  noc::TrafficConfig traffic;
  traffic.pattern = noc::TrafficPattern::HotSpot;
  traffic.hotspot = noc::NodeId{1, 1};
  traffic.hotspotFraction = 0.6;
  traffic.offeredLoad = load;
  traffic.payloadFlits = 6;
  traffic.seed = 42;
  mesh.attachTraffic(traffic);
  mesh.run(kWarmup + kMeasure);

  double sum = 0.0, sumSq = 0.0, minSent = 1e18, maxSent = 0.0;
  int nodes = 0;
  for (int i = 0; i < mesh.shape().nodes(); ++i) {
    const noc::NodeId n = mesh.shape().nodeAt(i);
    if (n == traffic.hotspot) continue;  // the hot node mostly receives
    const auto sent = static_cast<double>(mesh.ni(n).packetsSent());
    sum += sent;
    sumSq += sent * sent;
    minSent = std::min(minSent, sent);
    maxSent = std::max(maxSent, sent);
    ++nodes;
  }
  const double fairness =
      sumSq == 0.0 ? 1.0 : (sum * sum) / (nodes * sumSq);
  return {fairness, maxSent == 0.0 ? 1.0 : minSent / maxSent,
          mesh.ledger().packetLatency().percentile(0.99),
          mesh.ledger().delivered()};
}

std::string fmt(double v, const char* f = "%.3f") {
  char buf[32];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

}  // namespace

int main() {
  std::printf(
      "Arbitration ablation: round-robin vs fixed priority\n"
      "4x4 mesh, hotspot(1,1) 60%%, n=16, p=4, %d measured cycles\n"
      "fairness = Jain's index over per-source delivered packets "
      "(hot node excluded)\n\n",
      kMeasure);

  tech::Table table({"load", "RR fair", "RR min/max", "RR p99", "FP fair",
                     "FP min/max", "FP p99"});
  for (double load : {0.05, 0.10, 0.20, 0.30}) {
    const Result rr = run(router::ArbiterKind::RoundRobin, load);
    const Result fp = run(router::ArbiterKind::FixedPriority, load);
    table.addRow({fmt(load, "%.2f"), fmt(rr.fairness), fmt(rr.minMaxRatio),
                  fmt(rr.p99, "%.0f"), fmt(fp.fairness),
                  fmt(fp.minMaxRatio), fmt(fp.p99, "%.0f")});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nShape check: once the hot region saturates, fixed priority "
      "serves the\nfavoured ports at the expense of the others (lower "
      "fairness and min/max\nratio); round-robin keeps service near-equal "
      "- the starvation-freedom the\npaper's arbitration choice buys.\n");
  return 0;
}
