// Reproduces Table 2 of the paper: "Costs of RASoC" - full 5-port router
// costs for both FIFO implementations across n in {8,16,32}, p in {2,4},
// m fixed at 8 bits, plus the device-utilization sentence ("the largest
// configuration in the EAB-based approach uses less than 0.7% of the
// memory bits available in the target FPGA").
#include <cstdio>

#include "gates/blocks.hpp"
#include "softcore/elaborate.hpp"
#include "tech/mapper.hpp"
#include "tech/report.hpp"

using namespace rasoc;

int main() {
  const tech::Flex10keMapper mapper;

  std::printf("Table 2. Costs of RASoC (reproduction).\n");
  std::printf("5-port routers, m = 8. Device: %s\n\n",
              std::string(mapper.device().name).c_str());

  tech::Table table({"FIFO", "width", "LC(p=2)", "Reg(p=2)", "Mem(p=2)",
                     "LC(p=4)", "Reg(p=4)", "Mem(p=4)"});

  tech::Cost largestEab;
  for (router::FifoImpl impl :
       {router::FifoImpl::FlipFlop, router::FifoImpl::Eab}) {
    for (int n : {8, 16, 32}) {
      std::vector<std::string> row;
      row.push_back(std::string(router::name(impl)));
      row.push_back(std::to_string(n) + "-bit");
      for (int p : {2, 4}) {
        router::RouterParams params;
        params.n = n;
        params.p = p;
        params.fifoImpl = impl;
        const tech::Cost cost =
            softcore::elaborateRouter(params).totalCost(mapper);
        row.push_back(std::to_string(cost.lc));
        row.push_back(std::to_string(cost.reg));
        row.push_back(std::to_string(cost.mem));
        if (impl == router::FifoImpl::Eab && n == 32 && p == 4)
          largestEab = cost;
      }
      table.addRow(row);
    }
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nLargest EAB configuration (32-bit, 4 flits): %s\n",
              tech::utilizationSummary(mapper.device(), largestEab).c_str());
  std::printf(
      "Paper: \"the largest configuration in the EAB-based approach uses\n"
      "less than 0.7%% of the memory bits available in the target FPGA\"\n"
      "-> measured %d bits = %s of %d.\n",
      largestEab.mem,
      tech::percent(largestEab.mem, mapper.device().memoryBits).c_str(),
      mapper.device().memoryBits);

  // Beyond the paper: virtual-channel cost deltas.  The 2004 router has no
  // VCs; this extends the same analytical model to the VC'd channels
  // (per-VC buffers and routing state, input overlay glue, output-side
  // allocator — src/softcore/netlists.cpp) so the area price of VC counts
  // the later SoCIN/ParIS papers discuss is measurable per configuration.
  std::printf("\nVirtual-channel extension (EAB FIFOs, p = 4): LC/Reg/Mem "
              "vs VC count.\n");
  tech::Table vcTable({"width", "VCs", "LC", "Reg", "Mem", "dLC", "dReg",
                       "dMem"});
  for (int n : {8, 16, 32}) {
    tech::Cost base;
    for (int vcs : {1, 2, 4}) {
      router::RouterParams params;
      params.n = n;
      params.p = 4;
      params.fifoImpl = router::FifoImpl::Eab;
      params.numVCs = vcs;
      const tech::Cost cost =
          softcore::elaborateRouter(params).totalCost(mapper);
      if (vcs == 1) base = cost;
      vcTable.addRow({std::to_string(n) + "-bit", std::to_string(vcs),
                      std::to_string(cost.lc), std::to_string(cost.reg),
                      std::to_string(cost.mem),
                      std::to_string(cost.lc - base.lc),
                      std::to_string(cost.reg - base.reg),
                      std::to_string(cost.mem - base.mem)});
    }
  }
  std::fputs(vcTable.render().c_str(), stdout);

  // Closing the loop: the smallest configuration also exists as an actual
  // LUT/FF netlist (src/gates), equivalence-checked against the
  // behavioural model.  Its census brackets the analytical estimate (the
  // construction stores FIFO data in logic cells like the FF-based row and
  // spends explicit inverter LUTs that packing would absorb).
  {
    gates::GateNetlist nl;
    gates::buildGateRouter(nl, 8, 8, 2);
    router::RouterParams small;
    small.n = 8;
    small.p = 2;
    small.fifoImpl = router::FifoImpl::FlipFlop;
    const tech::Cost estimate =
        softcore::elaborateRouter(small).totalCost(mapper);
    std::printf(
        "\nGate-level cross-check (n=8, p=2): constructed netlist %d LUTs "
        "+ %d FFs\nvs analytical FF-based estimate %d LC / %d Reg.\n",
        nl.lutCount(), nl.dffCount(), estimate.lc, estimate.reg);
  }
  return 0;
}
