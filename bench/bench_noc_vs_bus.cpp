// The comparison the paper announces as ongoing work in its conclusion:
// "we are modeling RASoC in CASS ... in order to compare the performance of
// RASoC-based NoCs with the ones of SPIN [2] and PI-Bus [8]".
//
// Sweeps offered load on a 4x4 system under uniform traffic and reports
// packet latency and delivered throughput for:
//   * a 4x4 mesh of RASoC routers (cycle-accurate),
//   * a PI-Bus-style shared bus (transaction-level, cycle resolution),
//   * a SPIN-like 4-ary fat tree (calendar-based wormhole approximation),
//   * an ideal non-blocking crossbar (upper bound).
//
// Expected shape: the bus saturates once aggregate load approaches ~1
// flit/cycle (~0.06 flits/cycle/node at 16 nodes); the mesh tracks the
// crossbar at low load and sustains roughly an order of magnitude more
// aggregate throughput - the NoC motivation of the paper's introduction.
#include <cstdio>
#include <string>

#include "baseline/bus.hpp"
#include "baseline/crossbar.hpp"
#include "baseline/spin.hpp"
#include "noc/mesh.hpp"
#include "noc/observe.hpp"
#include "sim/simulator.hpp"
#include "tech/report.hpp"

using namespace rasoc;

namespace {

constexpr int kWarmup = 1000;
constexpr int kMeasure = 4000;
constexpr int kPayloadFlits = 6;

noc::TrafficConfig traffic(double load) {
  noc::TrafficConfig cfg;
  cfg.pattern = noc::TrafficPattern::UniformRandom;
  cfg.offeredLoad = load;
  cfg.payloadFlits = kPayloadFlits;
  cfg.seed = 1234;
  return cfg;
}

struct Result {
  double latency;
  double p99;
  double throughput;
  std::uint64_t delivered;
};

Result runMesh(double load) {
  noc::MeshConfig cfg;
  cfg.shape = noc::MeshShape{4, 4};
  cfg.params.n = 16;
  cfg.params.p = 4;
  noc::Mesh mesh(cfg);
  mesh.ledger().setWarmupCycles(kWarmup);
  mesh.attachTraffic(traffic(load));
  mesh.run(kWarmup + kMeasure);
  return {mesh.ledger().packetLatency().mean(),
          mesh.ledger().packetLatency().percentile(0.99),
          mesh.ledger().throughputFlitsPerCyclePerNode(kMeasure, 16),
          mesh.ledger().delivered()};
}

Result runBus(double load) {
  baseline::SharedBus bus("bus", baseline::BusConfig{noc::MeshShape{4, 4}});
  bus.ledger().setWarmupCycles(kWarmup);
  bus.attachTraffic(traffic(load));
  sim::Simulator sim;
  sim.add(bus);
  sim.reset();
  sim.run(kWarmup + kMeasure);
  return {bus.ledger().packetLatency().mean(),
          bus.ledger().packetLatency().percentile(0.99),
          bus.ledger().throughputFlitsPerCyclePerNode(kMeasure, 16),
          bus.ledger().delivered()};
}

Result runSpin(double load) {
  baseline::SpinFatTree spin("spin", 16);
  spin.ledger().setWarmupCycles(kWarmup);
  spin.attachTraffic(traffic(load), noc::MeshShape{4, 4});
  sim::Simulator sim;
  sim.add(spin);
  sim.reset();
  sim.run(kWarmup + kMeasure);
  return {spin.ledger().packetLatency().mean(),
          spin.ledger().packetLatency().percentile(0.99),
          spin.ledger().throughputFlitsPerCyclePerNode(kMeasure, 16),
          spin.ledger().delivered()};
}

Result runCrossbar(double load) {
  baseline::IdealCrossbar xbar("xbar", noc::MeshShape{4, 4});
  xbar.ledger().setWarmupCycles(kWarmup);
  xbar.attachTraffic(traffic(load));
  sim::Simulator sim;
  sim.add(xbar);
  sim.reset();
  sim.run(kWarmup + kMeasure);
  return {xbar.ledger().packetLatency().mean(),
          xbar.ledger().packetLatency().percentile(0.99),
          xbar.ledger().throughputFlitsPerCyclePerNode(kMeasure, 16),
          xbar.ledger().delivered()};
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

std::string fmt4(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

// Instrumented mesh run near the bus saturation point, serialized as a
// RunReport so the mesh side of the comparison is machine-diffable.
void writeMeshReport(const std::string& path, double load) {
  noc::MeshConfig cfg;
  cfg.shape = noc::MeshShape{4, 4};
  cfg.params.n = 16;
  cfg.params.p = 4;
  noc::Mesh mesh(cfg);
  telemetry::MetricsRegistry registry;
  mesh.enableTelemetry(registry);
  mesh.ledger().setWarmupCycles(kWarmup);
  mesh.attachTraffic(traffic(load));
  mesh.run(kWarmup + kMeasure);
  telemetry::RunReport report = noc::buildRunReport("noc_vs_bus.mesh", mesh);
  report.set("run", "offered_load", load);
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::printf("!! cannot write %s\n", path.c_str());
    return;
  }
  std::fputs(report.toJson().c_str(), out);
  std::fclose(out);
  std::printf("\nRunReport JSON written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "RASoC 4x4 mesh vs PI-Bus-style shared bus vs ideal crossbar\n"
      "uniform traffic, %d payload flits/packet, n=16, p=4, warmup %d, "
      "measured %d cycles\n"
      "latency in cycles (creation -> trailer delivery), throughput in "
      "flits/cycle/node\n\n",
      kPayloadFlits, kWarmup, kMeasure);

  tech::Table table({"load", "mesh lat", "mesh p99", "mesh thru", "bus lat",
                     "bus p99", "bus thru", "spin lat", "spin thru",
                     "xbar lat", "xbar thru"});
  for (double load : {0.01, 0.02, 0.04, 0.06, 0.10, 0.15, 0.20, 0.30}) {
    const Result mesh = runMesh(load);
    const Result bus = runBus(load);
    const Result spin = runSpin(load);
    const Result xbar = runCrossbar(load);
    table.addRow({fmt(load), fmt(mesh.latency), fmt(mesh.p99),
                  fmt4(mesh.throughput), fmt(bus.latency), fmt(bus.p99),
                  fmt4(bus.throughput), fmt(spin.latency),
                  fmt4(spin.throughput), fmt(xbar.latency),
                  fmt4(xbar.throughput)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nShape checks: the shared bus saturates near 1/16 = 0.0625 "
      "flits/cycle/node\nand its latency explodes beyond ~0.06 offered "
      "load; the mesh keeps tracking\nthe offered load with bounded "
      "latency well past that point.\n");

  writeMeshReport(argc > 1 ? argv[1] : "bench_noc_vs_bus_report.json", 0.10);
  return 0;
}
