// Reliability experiment: fault-rate x offered-load sweep over a seeded
// fault campaign (noc/fault.hpp), with the NI retransmission protocol
// (noc/reliable.hpp) on and off.
//
// For each (fault intensity, load) cell the campaign scatters corruption
// windows, stuck-ack stalls and link-down outages over the links, the
// network runs under uniform traffic and then drains.  With reliability on
// the sweep reports delivered/lost/duplicate counts (exactly-once: lost
// and duplicates stay zero), the retransmission/timeout cost, and the
// goodput degradation versus the fault-free cell at the same load.  The
// reliability-off companion table shows what the same campaign does to an
// unprotected network: undelivered packets and unattributable fragments.
//
// Reliable runs pair the protocol with HLP parity: parity catches any
// single-bit flip per flit, the NI drops flagged frames before the
// transport, and retransmission turns detection into recovery.
//
// Flags follow bench_noc_loadsweep: --topology=mesh|torus|ring (16 nodes
// each), --kernel=naive|event|parallel|compiled, --threads=N, plus
// --quick for a
// reduced CI smoke grid.  First non-flag argument is the RunReport JSON
// artifact path (default bench_noc_faultsweep_report.json).
//
// --trace=<path> flit-traces the instrumented *reliable* run and writes
// its Chrome/Perfetto JSON there (--trace-sample=K thins it): the flow
// tracks show injection, the faulted hop's drop/corrupt/stall instants,
// the NACK/retransmit control frames and the exactly-once ejection.
//
// --qos replaces the grid with the QoS-over-reliability experiment: a
// Control probe and a Bulk flow share a 4-VC qosClasses network with the
// retransmission protocol on, swept across the fault campaign
// intensities.  Exactly-once must hold *per class* (data frames carry
// the submitter's class end to end; retransmissions and ACKs ride the
// Control-bound reliability class), and the Control probe's p99 must
// stay put while faults hammer the Bulk lane.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "noc/fault.hpp"
#include "noc/network.hpp"
#include "noc/observe.hpp"
#include "noc/watchdog.hpp"
#include "tech/report.hpp"
#include "telemetry/trace_event.hpp"

using namespace rasoc;

namespace {

std::string gTopology = "mesh";
std::string gKernel = "event";
int gThreads = 2;
int gVcs = 1;
bool gQuick = false;
bool gQos = false;
std::string gTracePath;  // empty = flit tracing off
std::uint64_t gTraceSample = 1;

int measureCycles() { return gQuick ? 800 : 3000; }

std::vector<double> faultRates() {
  if (gQuick) return {0.0, 0.01};
  return {0.0, 0.002, 0.01, 0.05};
}

std::vector<double> loads() {
  if (gQuick) return {0.10};
  return {0.05, 0.15, 0.25};
}

std::shared_ptr<const noc::Topology> makeBenchTopology() {
  return noc::makeTopology(gTopology, 4, 4);
}

sim::Simulator::Kernel benchKernel() {
  if (gKernel == "naive") return sim::Simulator::Kernel::Naive;
  if (gKernel == "parallel") return sim::Simulator::Kernel::ParallelEventDriven;
  if (gKernel == "compiled") return sim::Simulator::Kernel::Compiled;
  return sim::Simulator::Kernel::EventDriven;
}

// Scales a scalar fault intensity into a full campaign: the intensity is
// the per-flit corruption rate, and stall/outage events grow with it.
noc::CampaignConfig campaignFor(double intensity) {
  noc::CampaignConfig campaign;
  campaign.horizon = static_cast<std::uint64_t>(measureCycles());
  campaign.corruptRate = intensity;
  campaign.corruptLinkFraction = 0.75;
  const int events =
      intensity > 0.0 ? 2 + static_cast<int>(intensity * 100.0) : 0;
  campaign.stallEvents = events;
  campaign.dropEvents = events;
  campaign.minDuration = 16;
  campaign.maxDuration = 96;
  campaign.seed = 0xfa17;
  return campaign;
}

noc::NetworkConfig benchConfig(double intensity, bool reliable,
                               int vcs = 0) {
  noc::NetworkConfig cfg;
  cfg.params.n = 16;
  cfg.params.p = 4;
  if (gTopology == "ring") cfg.params.m = 10;
  cfg.params.numVCs = vcs > 0 ? vcs : gVcs;
  cfg.kernel = benchKernel();
  cfg.threads = gThreads;
  cfg.hlpParity = true;  // same wire format in both tables
  if (reliable) {
    cfg.reliability.enabled = true;
    cfg.reliability.seqBits = 6;
    cfg.reliability.window = 8;
    // Generous timeouts: the RTO must sit above the congested round trip,
    // or queueing delay masquerades as loss and triggers spurious
    // retransmit storms.
    cfg.reliability.rtoInitial = 256;
    cfg.reliability.rtoMax = 4096;
    cfg.reliability.nackMinInterval = 16;
  }
  if (intensity > 0.0)
    cfg.faultPlan = noc::makeFaultPlan(*makeBenchTopology(),
                                       campaignFor(intensity));
  return cfg;
}

noc::TrafficConfig benchTraffic(double load) {
  noc::TrafficConfig traffic;
  traffic.pattern = noc::TrafficPattern::UniformRandom;
  traffic.offeredLoad = load;
  traffic.payloadFlits = 6;
  traffic.seed = 99;
  return traffic;
}

struct Cell {
  std::uint64_t queued = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;         // queued - delivered after the drain
  std::uint64_t duplicates = 0;   // duplicate frames suppressed at the NIs
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t unattributed = 0;
  bool drained = false;
  double goodput = 0.0;  // delivered payload+framing flits /cycle/node
};

Cell run(double intensity, double load, bool reliable, int vcs = 0) {
  auto topology = makeBenchTopology();
  noc::Network net(topology, benchConfig(intensity, reliable, vcs));
  net.attachTraffic(benchTraffic(load));
  const int cycles = measureCycles();
  net.run(static_cast<std::uint64_t>(cycles));
  Cell cell;
  // Close the offered-load window, then drain so in-flight packets do not
  // masquerade as losses.  Unprotected runs can still be wedged by
  // truncated wormholes, so the cap must not hang.
  net.pauseTraffic(true);
  cell.drained = net.drain(static_cast<std::uint64_t>(cycles) * 20);
  cell.queued = net.ledger().queued();
  cell.delivered = net.ledger().delivered();
  cell.lost = cell.queued - cell.delivered;
  cell.unattributed = net.unattributedPackets();
  if (reliable) {
    const noc::ReliabilityStats rs = net.reliabilityStats();
    cell.duplicates = rs.duplicatesDropped;
    cell.retransmits = rs.retransmissions;
    cell.timeouts = rs.timeouts;
  }
  // Delivered flits over the whole run including the drain tail, so
  // retransmission latency shows up as lost goodput.
  cell.goodput = net.ledger().throughputFlitsPerCyclePerNode(
      net.simulator().cycle(), topology->nodes());
  return cell;
}

std::string fmt(double v, const char* f = "%.4f") {
  char buf[32];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

std::string fmtU(std::uint64_t v) { return std::to_string(v); }

// --- QoS-over-reliability experiment (--qos) --------------------------

noc::FlowSpec qosFlow(router::TrafficClass cls, double load, int payload,
                      std::uint64_t seed) {
  noc::FlowSpec flow;
  flow.trafficClass = cls;
  flow.traffic.pattern = noc::TrafficPattern::UniformRandom;
  flow.traffic.offeredLoad = load;
  flow.traffic.payloadFlits = payload;
  flow.traffic.seed = seed;
  return flow;
}

struct QosCell {
  std::uint64_t ctrlQueued = 0;
  std::uint64_t ctrlDelivered = 0;
  std::uint64_t bulkQueued = 0;
  std::uint64_t bulkDelivered = 0;
  double ctrlP99 = 0.0;
  double ctrlNetP99 = 0.0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  bool drained = false;
};

QosCell runQosCell(double intensity) {
  auto topology = makeBenchTopology();
  noc::NetworkConfig cfg = benchConfig(intensity, /*reliable=*/true, 4);
  cfg.params.qosClasses = true;
  noc::Network net(topology, cfg);
  // Bulk at 0.10: the class map confines Bulk to a single adaptive lane,
  // which saturates well before the whole-fabric knee — 0.10 keeps the
  // lane's queueing delay under the RTO so congestion does not
  // masquerade as loss in the timeout column.
  net.attachTraffic(std::vector<noc::FlowSpec>{
      qosFlow(router::TrafficClass::Control, 0.02, 2, 99),
      qosFlow(router::TrafficClass::Bulk, 0.10, 6, 7)});
  const int cycles = measureCycles();
  net.run(static_cast<std::uint64_t>(cycles));
  net.pauseTraffic(true);
  QosCell cell;
  cell.drained = net.drain(static_cast<std::uint64_t>(cycles) * 20);
  cell.ctrlQueued = net.ledger().queued(router::TrafficClass::Control);
  cell.ctrlDelivered = net.ledger().delivered(router::TrafficClass::Control);
  cell.bulkQueued = net.ledger().queued(router::TrafficClass::Bulk);
  cell.bulkDelivered = net.ledger().delivered(router::TrafficClass::Bulk);
  cell.ctrlP99 = net.ledger()
                     .packetLatency(router::TrafficClass::Control)
                     .percentile(0.99);
  cell.ctrlNetP99 = net.ledger()
                        .networkLatency(router::TrafficClass::Control)
                        .percentile(0.99);
  const noc::ReliabilityStats rs = net.reliabilityStats();
  cell.retransmits = rs.retransmissions;
  cell.timeouts = rs.timeouts;
  return cell;
}

int runQosSweep() {
  std::printf(
      "RASoC %s QoS-over-reliability sweep (16 nodes, n=16, 4 VCs, "
      "qosClasses, reliable transport, %d measured cycles + drain, %s "
      "kernel)\n\n",
      makeBenchTopology()->describe().c_str(), measureCycles(),
      gKernel.c_str());

  int exitCode = 0;
  tech::Table table({"fault rate", "ctrl q/d", "ctrl lost", "ctrl p99",
                     "ctrl net p99", "bulk q/d", "bulk lost", "retx",
                     "timeouts", "drained"});
  for (double rate : faultRates()) {
    const QosCell cell = runQosCell(rate);
    const std::uint64_t ctrlLost = cell.ctrlQueued - cell.ctrlDelivered;
    const std::uint64_t bulkLost = cell.bulkQueued - cell.bulkDelivered;
    table.addRow({fmt(rate, "%.3f"),
                  fmtU(cell.ctrlQueued) + "/" + fmtU(cell.ctrlDelivered),
                  fmtU(ctrlLost), fmt(cell.ctrlP99, "%.1f"),
                  fmt(cell.ctrlNetP99, "%.1f"),
                  fmtU(cell.bulkQueued) + "/" + fmtU(cell.bulkDelivered),
                  fmtU(bulkLost), fmtU(cell.retransmits),
                  fmtU(cell.timeouts), cell.drained ? "yes" : "NO"});
    if (ctrlLost != 0 || bulkLost != 0 || !cell.drained) {
      std::printf("!! per-class exactly-once violated at rate=%.3f\n", rate);
      exitCode = 1;
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nShape checks: lost is zero in both class columns at every fault\n"
      "rate — the class tag survives retransmission, so recovered frames\n"
      "land in their submitter's ledger bucket.  The end-to-end ctrl p99\n"
      "grows with the fault rate because a corrupted Control frame waits\n"
      "out an RTO like any other — reliability trades tail latency for\n"
      "the delivery guarantee, it does not bypass it per class.  That the\n"
      "net p99 matches the end-to-end p99 localizes the tail: the wait is\n"
      "in-flight recovery, not backlog at the source NI.\n");
  return exitCode;
}

std::string instrumentedReport(double intensity, double load, bool reliable,
                               std::string* traceJson = nullptr,
                               std::string* kernelJson = nullptr) {
  auto topology = makeBenchTopology();
  noc::Network net(topology, benchConfig(intensity, reliable));
  telemetry::MetricsRegistry registry;
  net.enableTelemetry(registry);
  noc::FlowTracer* tracer = nullptr;
  if (traceJson) {
    noc::TraceConfig traceConfig;
    traceConfig.sampleEvery = gTraceSample;
    tracer = &net.enableTracing(traceConfig);
  }
  noc::Watchdog watchdog("dog", net.ledger(), 500,
                         [&net] { return net.blockedLinkNames(); },
                         [&net] { return net.blockedLinkTraceDump(); });
  net.simulator().add(watchdog);
  net.attachTraffic(benchTraffic(load));
  const int cycles = measureCycles();
  net.run(static_cast<std::uint64_t>(cycles));
  net.pauseTraffic(true);
  net.drain(static_cast<std::uint64_t>(cycles) * 20);
  if (tracer) {
    *traceJson = tracer->perfettoJson();
    if (kernelJson) *kernelJson = tracer->kernelProfileJson();
  }
  telemetry::RunReport report = noc::buildRunReport(
      std::string("faultsweep.") + (reliable ? "reliable" : "unprotected"),
      net, &watchdog);
  report.set("run", "fault_intensity", intensity);
  report.set("run", "offered_load", load);
  report.set("run", "kernel", gKernel);
  report.set("run", "seed", std::uint64_t{99});
  return report.toJson();
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "bench_noc_faultsweep_report.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--topology=", 11) == 0) {
      gTopology = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--kernel=", 9) == 0) {
      gKernel = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      gThreads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--vcs=", 6) == 0) {
      gVcs = std::atoi(argv[i] + 6);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      gQuick = true;
    } else if (std::strcmp(argv[i], "--qos") == 0) {
      gQos = true;
    } else if (std::strncmp(argv[i], "--trace-sample=", 15) == 0) {
      gTraceSample = std::strtoull(argv[i] + 15, nullptr, 10);
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      gTracePath = argv[i] + 8;
    } else {
      path = argv[i];
    }
  }
  if (gTraceSample < 1) {
    std::printf("--trace-sample=%llu must be >= 1\n",
                static_cast<unsigned long long>(gTraceSample));
    return 1;
  }
  if (gTopology != "mesh" && gTopology != "torus" && gTopology != "ring") {
    std::printf("unknown --topology=%s (mesh|torus|ring)\n",
                gTopology.c_str());
    return 1;
  }
  if (gKernel != "naive" && gKernel != "event" && gKernel != "parallel" &&
      gKernel != "compiled") {
    std::printf("unknown --kernel=%s (naive|event|parallel|compiled)\n",
                gKernel.c_str());
    return 1;
  }
  if (gThreads < 1) {
    std::printf("--threads=%d must be >= 1\n", gThreads);
    return 1;
  }
  if (gVcs != 1 && gVcs != 2 && gVcs != 4) {
    std::printf("--vcs=%d must be 1, 2 or 4\n", gVcs);
    return 1;
  }
  if (gVcs > 1 && !gTracePath.empty()) {
    std::printf("--trace is incompatible with --vcs>1 (flit tracing does "
                "not support virtual channels)\n");
    return 1;
  }
  if (gQos) {
    if (gVcs != 1 && gVcs != 4) {
      std::printf("--qos needs 4 VCs (escape layer + per-class adaptive "
                  "lanes); drop --vcs or pass --vcs=4\n");
      return 1;
    }
    if (!gTracePath.empty()) {
      std::printf("--trace is incompatible with --qos (QoS runs at 4 "
                  "VCs)\n");
      return 1;
    }
    return runQosSweep();
  }

  std::printf(
      "RASoC %s fault sweep (16 nodes, n=16, 8-flit packets, %d measured "
      "cycles + drain, %s kernel)\n\n",
      makeBenchTopology()->describe().c_str(), measureCycles(),
      gKernel.c_str());

  int exitCode = 0;

  std::printf("--- reliability ON (seq=6 bits, window=8, rto=256..4096) ---\n");
  for (double load : loads()) {
    std::printf("load %.2f:\n", load);
    tech::Table table({"fault rate", "queued", "delivered", "lost", "dup",
                       "retx", "timeouts", "goodput", "degr%"});
    double baseline = 0.0;
    for (double rate : faultRates()) {
      const Cell cell = run(rate, load, /*reliable=*/true);
      if (rate == 0.0) baseline = cell.goodput;
      const double degradation =
          baseline > 0.0 ? (1.0 - cell.goodput / baseline) * 100.0 : 0.0;
      table.addRow({fmt(rate, "%.3f"), fmtU(cell.queued),
                    fmtU(cell.delivered), fmtU(cell.lost),
                    fmtU(cell.duplicates), fmtU(cell.retransmits),
                    fmtU(cell.timeouts), fmt(cell.goodput),
                    fmt(degradation, "%.1f")});
      if (cell.lost != 0 || !cell.drained) {
        std::printf("!! exactly-once violated at rate=%.3f load=%.2f\n",
                    rate, load);
        exitCode = 1;
      }
    }
    std::fputs(table.render().c_str(), stdout);
  }

  std::printf(
      "\n--- reliability OFF (same campaigns, unprotected wire format) "
      "---\n");
  for (double load : loads()) {
    std::printf("load %.2f:\n", load);
    tech::Table table({"fault rate", "queued", "delivered", "undelivered",
                       "unattributed", "drained", "goodput"});
    for (double rate : faultRates()) {
      const Cell cell = run(rate, load, /*reliable=*/false);
      table.addRow({fmt(rate, "%.3f"), fmtU(cell.queued),
                    fmtU(cell.delivered), fmtU(cell.lost),
                    fmtU(cell.unattributed), cell.drained ? "yes" : "NO",
                    fmt(cell.goodput)});
    }
    std::fputs(table.render().c_str(), stdout);
  }

  // Reliability over virtual channels: the same exactly-once claim must
  // hold when packets interleave flit-by-flit across VCs on every link —
  // the retransmission protocol sits above per-VC reassembly, so a framing
  // bug in either layer shows up as lost or duplicated frames here.
  std::printf("\n--- reliability over VCs (rate=%.3f, load=%.2f) ---\n",
              faultRates().back(), loads()[0]);
  {
    tech::Table table({"VCs", "queued", "delivered", "lost", "dup", "retx",
                       "goodput", "drained"});
    for (int vcs : {1, 2, 4}) {
      const Cell cell =
          run(faultRates().back(), loads()[0], /*reliable=*/true, vcs);
      table.addRow({fmtU(static_cast<std::uint64_t>(vcs)), fmtU(cell.queued),
                    fmtU(cell.delivered), fmtU(cell.lost),
                    fmtU(cell.duplicates), fmtU(cell.retransmits),
                    fmt(cell.goodput), cell.drained ? "yes" : "NO"});
      if (cell.lost != 0 || !cell.drained) {
        std::printf("!! exactly-once violated at vcs=%d\n", vcs);
        exitCode = 1;
      }
    }
    std::fputs(table.render().c_str(), stdout);
  }

  std::printf(
      "\nShape checks: with reliability on, lost and dup are zero in every\n"
      "cell (exactly-once), and goodput degrades gracefully as retransmits\n"
      "consume bandwidth.  Without it the same campaigns strand packets\n"
      "(undelivered > 0) and leave unattributable fragments; a wedged drain\n"
      "(drained=NO) means a truncated wormhole never released its path.\n");

  const double midRate = faultRates().back();
  const double midLoad = loads()[loads().size() / 2];
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::printf("!! cannot write %s\n", path.c_str());
    return 1;
  }
  std::fputs("[\n", out);
  std::string traceJson;
  std::string kernelJson;
  std::fputs(instrumentedReport(midRate, midLoad, true,
                                gTracePath.empty() ? nullptr : &traceJson,
                                gTracePath.empty() ? nullptr : &kernelJson)
                 .c_str(),
             out);
  std::fputs(",\n", out);
  std::fputs(instrumentedReport(midRate, midLoad, false).c_str(), out);
  std::fputs("]\n", out);
  std::fclose(out);
  std::printf("\nRunReport JSON written to %s\n", path.c_str());

  if (!gTracePath.empty()) {
    std::string error;
    if (!telemetry::validatePerfettoJson(traceJson, &error)) {
      std::printf("!! Perfetto trace failed schema validation: %s\n",
                  error.c_str());
      return 1;
    }
    std::FILE* traceOut = std::fopen(gTracePath.c_str(), "w");
    if (!traceOut) {
      std::printf("!! cannot write %s\n", gTracePath.c_str());
      return 1;
    }
    std::fputs(traceJson.c_str(), traceOut);
    std::fclose(traceOut);
    std::printf("Perfetto trace written to %s (%zu bytes, sample=%llu)\n",
                gTracePath.c_str(), traceJson.size(),
                static_cast<unsigned long long>(gTraceSample));

    // Kernel-profile counters are kernel-dependent, so they ship as a
    // sidecar and the machine trace stays byte-identical across kernels.
    const std::string kernelPath = gTracePath + ".kernel.json";
    if (!telemetry::validatePerfettoJson(kernelJson, &error)) {
      std::printf("!! kernel-profile sidecar failed schema validation: %s\n",
                  error.c_str());
      return 1;
    }
    std::FILE* kernelOut = std::fopen(kernelPath.c_str(), "w");
    if (!kernelOut) {
      std::printf("!! cannot write %s\n", kernelPath.c_str());
      return 1;
    }
    std::fputs(kernelJson.c_str(), kernelOut);
    std::fclose(kernelOut);
    std::printf("Kernel-profile sidecar written to %s (%zu bytes)\n",
                kernelPath.c_str(), kernelJson.size());
  }
  return exitCode;
}
