// Simulator performance microbenchmarks (google-benchmark): cycles/second
// for a single router and for full meshes - the practical limit on how much
// NoC evaluation the harnesses above can afford.
#include <benchmark/benchmark.h>

#include "noc/mesh.hpp"
#include "router/rasoc.hpp"
#include "sim/simulator.hpp"
#include "softcore/elaborate.hpp"
#include "tech/mapper.hpp"

using namespace rasoc;

namespace {

void BM_SingleRouterIdle(benchmark::State& state) {
  router::RouterParams params;
  router::Rasoc dut("dut", params);
  sim::Simulator sim;
  sim.add(dut);
  sim.reset();
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SingleRouterIdle);

// Args: (side, kernel) with kernel 0 = naive fixpoint, 1 = event-driven,
// 2 = parallel with 2 threads, 3 = parallel with 4 threads, 4 = compiled
// (word-packed arena + levelized op tape).  Compare BM_MeshUnderLoad/8/0
// against /8/1 for the scheduler speedup, /16/1 against /16/3 for the
// parallel speedup and /8/1 against /8/4 for the lowering speedup;
// `evals_per_cycle` counts evaluate() calls and shows where it comes from
// (near zero under the compiled kernel: only fallback thunks evaluate).
void BM_MeshUnderLoad(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  noc::MeshConfig cfg;
  cfg.shape = noc::MeshShape{side, side};
  cfg.params.n = 16;
  cfg.params.p = 4;
  if (side > 8) cfg.params.m = 12;  // 16x16 offsets exceed the m=8 RIB range
  switch (state.range(1)) {
    case 0: cfg.kernel = sim::Simulator::Kernel::Naive; break;
    case 1: cfg.kernel = sim::Simulator::Kernel::EventDriven; break;
    case 4: cfg.kernel = sim::Simulator::Kernel::Compiled; break;
    default:
      cfg.kernel = sim::Simulator::Kernel::ParallelEventDriven;
      cfg.threads = state.range(1) == 2 ? 2 : 4;
      break;
  }
  noc::Mesh mesh(cfg);
  noc::TrafficConfig traffic;
  traffic.offeredLoad = 0.2;
  traffic.payloadFlits = 6;
  traffic.seed = 17;
  mesh.attachTraffic(traffic);
  const std::uint64_t evalsBefore = mesh.simulator().evaluateCalls();
  for (auto _ : state) mesh.run(1);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["routers"] = side * side;
  state.counters["evals_per_cycle"] = benchmark::Counter(
      static_cast<double>(mesh.simulator().evaluateCalls() - evalsBefore),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_MeshUnderLoad)
    ->ArgsProduct({{2, 4, 6, 8}, {0, 1}})
    ->ArgsProduct({{8, 16}, {2, 3}})
    ->Args({16, 1})
    ->ArgsProduct({{8, 16, 32}, {4}});

// Torus counterpart of BM_MeshUnderLoad (same arg encoding): the wrap
// links add cross-partition frontier edges at both ends of every strip, the
// parallel kernel's worst case for a contiguous-block partition.
void BM_TorusUnderLoad(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  noc::NetworkConfig cfg;
  cfg.params.n = 16;
  cfg.params.p = 4;
  if (side > 8) cfg.params.m = 12;  // 16x16 offsets exceed the m=8 RIB range
  switch (state.range(1)) {
    case 0: cfg.kernel = sim::Simulator::Kernel::Naive; break;
    case 1: cfg.kernel = sim::Simulator::Kernel::EventDriven; break;
    case 4: cfg.kernel = sim::Simulator::Kernel::Compiled; break;
    default:
      cfg.kernel = sim::Simulator::Kernel::ParallelEventDriven;
      cfg.threads = state.range(1) == 2 ? 2 : 4;
      break;
  }
  noc::Network net(noc::makeTopology("torus", side, side), cfg);
  noc::TrafficConfig traffic;
  traffic.offeredLoad = 0.2;
  traffic.payloadFlits = 6;
  traffic.seed = 17;
  net.attachTraffic(traffic);
  for (auto _ : state) net.run(1);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["routers"] = side * side;
}
BENCHMARK(BM_TorusUnderLoad)
    ->ArgsProduct({{8, 16}, {1, 2, 3, 4}});

// Same mesh with the telemetry subsystem attached: the delta against
// BM_MeshUnderLoad is the full cost of leaving instrumentation enabled
// (null-sink runs pay only a per-channel branch and are covered above).
void BM_MeshUnderLoadTelemetry(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  noc::MeshConfig cfg;
  cfg.shape = noc::MeshShape{side, side};
  cfg.params.n = 16;
  cfg.params.p = 4;
  noc::Mesh mesh(cfg);
  telemetry::MetricsRegistry registry;
  mesh.enableTelemetry(registry);
  noc::TrafficConfig traffic;
  traffic.offeredLoad = 0.2;
  traffic.payloadFlits = 6;
  traffic.seed = 17;
  mesh.attachTraffic(traffic);
  for (auto _ : state) mesh.run(1);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["routers"] = side * side;
}
BENCHMARK(BM_MeshUnderLoadTelemetry)->Arg(4);

void BM_ElaborateAndMap(benchmark::State& state) {
  // Elaboration + technology mapping cost (the "synthesis" analogue).
  const tech::Flex10keMapper mapper;
  router::RouterParams params;
  params.n = 32;
  params.p = 4;
  for (auto _ : state) {
    const softcore::Entity router = softcore::elaborateRouter(params);
    benchmark::DoNotOptimize(router.totalCost(mapper));
  }
}
BENCHMARK(BM_ElaborateAndMap);

}  // namespace

BENCHMARK_MAIN();
