// Simulator performance microbenchmarks (google-benchmark): cycles/second
// for a single router and for full meshes - the practical limit on how much
// NoC evaluation the harnesses above can afford.
#include <benchmark/benchmark.h>

#include "noc/mesh.hpp"
#include "router/rasoc.hpp"
#include "sim/simulator.hpp"
#include "softcore/elaborate.hpp"
#include "tech/mapper.hpp"

using namespace rasoc;

namespace {

void BM_SingleRouterIdle(benchmark::State& state) {
  router::RouterParams params;
  router::Rasoc dut("dut", params);
  sim::Simulator sim;
  sim.add(dut);
  sim.reset();
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SingleRouterIdle);

void BM_MeshUnderLoad(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  noc::MeshConfig cfg;
  cfg.shape = noc::MeshShape{side, side};
  cfg.params.n = 16;
  cfg.params.p = 4;
  noc::Mesh mesh(cfg);
  noc::TrafficConfig traffic;
  traffic.offeredLoad = 0.2;
  traffic.payloadFlits = 6;
  traffic.seed = 17;
  mesh.attachTraffic(traffic);
  for (auto _ : state) mesh.run(1);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["routers"] = side * side;
}
BENCHMARK(BM_MeshUnderLoad)->Arg(2)->Arg(4)->Arg(6);

// Same mesh with the telemetry subsystem attached: the delta against
// BM_MeshUnderLoad is the full cost of leaving instrumentation enabled
// (null-sink runs pay only a per-channel branch and are covered above).
void BM_MeshUnderLoadTelemetry(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  noc::MeshConfig cfg;
  cfg.shape = noc::MeshShape{side, side};
  cfg.params.n = 16;
  cfg.params.p = 4;
  noc::Mesh mesh(cfg);
  telemetry::MetricsRegistry registry;
  mesh.enableTelemetry(registry);
  noc::TrafficConfig traffic;
  traffic.offeredLoad = 0.2;
  traffic.payloadFlits = 6;
  traffic.seed = 17;
  mesh.attachTraffic(traffic);
  for (auto _ : state) mesh.run(1);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["routers"] = side * side;
}
BENCHMARK(BM_MeshUnderLoadTelemetry)->Arg(4);

void BM_ElaborateAndMap(benchmark::State& state) {
  // Elaboration + technology mapping cost (the "synthesis" analogue).
  const tech::Flex10keMapper mapper;
  router::RouterParams params;
  params.n = 32;
  params.p = 4;
  for (auto _ : state) {
    const softcore::Entity router = softcore::elaborateRouter(params);
    benchmark::DoNotOptimize(router.totalCost(mapper));
  }
}
BENCHMARK(BM_ElaborateAndMap);

}  // namespace

BENCHMARK_MAIN();
