# Empty compiler generated dependencies file for app_mapping.
# This may be replaced when dependencies are built.
