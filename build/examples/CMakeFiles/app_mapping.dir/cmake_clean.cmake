file(REMOVE_RECURSE
  "CMakeFiles/app_mapping.dir/app_mapping.cpp.o"
  "CMakeFiles/app_mapping.dir/app_mapping.cpp.o.d"
  "app_mapping"
  "app_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
