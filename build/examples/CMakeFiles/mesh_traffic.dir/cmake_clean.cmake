file(REMOVE_RECURSE
  "CMakeFiles/mesh_traffic.dir/mesh_traffic.cpp.o"
  "CMakeFiles/mesh_traffic.dir/mesh_traffic.cpp.o.d"
  "mesh_traffic"
  "mesh_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
