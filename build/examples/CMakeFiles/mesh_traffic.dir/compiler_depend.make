# Empty compiler generated dependencies file for mesh_traffic.
# This may be replaced when dependencies are built.
