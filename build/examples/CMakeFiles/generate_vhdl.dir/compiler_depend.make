# Empty compiler generated dependencies file for generate_vhdl.
# This may be replaced when dependencies are built.
