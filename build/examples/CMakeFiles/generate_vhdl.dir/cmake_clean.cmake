file(REMOVE_RECURSE
  "CMakeFiles/generate_vhdl.dir/generate_vhdl.cpp.o"
  "CMakeFiles/generate_vhdl.dir/generate_vhdl.cpp.o.d"
  "generate_vhdl"
  "generate_vhdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_vhdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
