file(REMOVE_RECURSE
  "CMakeFiles/bus_vs_noc.dir/bus_vs_noc.cpp.o"
  "CMakeFiles/bus_vs_noc.dir/bus_vs_noc.cpp.o.d"
  "bus_vs_noc"
  "bus_vs_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_vs_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
