# Empty dependencies file for bus_vs_noc.
# This may be replaced when dependencies are built.
