file(REMOVE_RECURSE
  "CMakeFiles/soc_platform.dir/soc_platform.cpp.o"
  "CMakeFiles/soc_platform.dir/soc_platform.cpp.o.d"
  "soc_platform"
  "soc_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
