# Empty compiler generated dependencies file for soc_platform.
# This may be replaced when dependencies are built.
