# Empty dependencies file for router_params_test.
# This may be replaced when dependencies are built.
