file(REMOVE_RECURSE
  "CMakeFiles/router_params_test.dir/params_test.cpp.o"
  "CMakeFiles/router_params_test.dir/params_test.cpp.o.d"
  "router_params_test"
  "router_params_test.pdb"
  "router_params_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
