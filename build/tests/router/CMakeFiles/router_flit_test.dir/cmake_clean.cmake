file(REMOVE_RECURSE
  "CMakeFiles/router_flit_test.dir/flit_test.cpp.o"
  "CMakeFiles/router_flit_test.dir/flit_test.cpp.o.d"
  "router_flit_test"
  "router_flit_test.pdb"
  "router_flit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_flit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
