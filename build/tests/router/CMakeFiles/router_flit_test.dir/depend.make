# Empty dependencies file for router_flit_test.
# This may be replaced when dependencies are built.
