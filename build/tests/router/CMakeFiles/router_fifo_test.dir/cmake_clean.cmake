file(REMOVE_RECURSE
  "CMakeFiles/router_fifo_test.dir/fifo_test.cpp.o"
  "CMakeFiles/router_fifo_test.dir/fifo_test.cpp.o.d"
  "router_fifo_test"
  "router_fifo_test.pdb"
  "router_fifo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_fifo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
