# Empty compiler generated dependencies file for router_fifo_test.
# This may be replaced when dependencies are built.
