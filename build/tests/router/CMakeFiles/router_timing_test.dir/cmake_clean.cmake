file(REMOVE_RECURSE
  "CMakeFiles/router_timing_test.dir/timing_test.cpp.o"
  "CMakeFiles/router_timing_test.dir/timing_test.cpp.o.d"
  "router_timing_test"
  "router_timing_test.pdb"
  "router_timing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
