# Empty dependencies file for router_timing_test.
# This may be replaced when dependencies are built.
