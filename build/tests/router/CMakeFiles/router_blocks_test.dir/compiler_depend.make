# Empty compiler generated dependencies file for router_blocks_test.
# This may be replaced when dependencies are built.
