file(REMOVE_RECURSE
  "CMakeFiles/router_blocks_test.dir/blocks_test.cpp.o"
  "CMakeFiles/router_blocks_test.dir/blocks_test.cpp.o.d"
  "router_blocks_test"
  "router_blocks_test.pdb"
  "router_blocks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_blocks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
