# Empty compiler generated dependencies file for router_link_test.
# This may be replaced when dependencies are built.
