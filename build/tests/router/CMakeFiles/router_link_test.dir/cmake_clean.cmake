file(REMOVE_RECURSE
  "CMakeFiles/router_link_test.dir/link_test.cpp.o"
  "CMakeFiles/router_link_test.dir/link_test.cpp.o.d"
  "router_link_test"
  "router_link_test.pdb"
  "router_link_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
