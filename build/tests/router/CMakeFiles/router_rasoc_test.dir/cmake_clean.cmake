file(REMOVE_RECURSE
  "CMakeFiles/router_rasoc_test.dir/rasoc_test.cpp.o"
  "CMakeFiles/router_rasoc_test.dir/rasoc_test.cpp.o.d"
  "router_rasoc_test"
  "router_rasoc_test.pdb"
  "router_rasoc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_rasoc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
