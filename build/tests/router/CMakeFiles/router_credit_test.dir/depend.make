# Empty dependencies file for router_credit_test.
# This may be replaced when dependencies are built.
