file(REMOVE_RECURSE
  "CMakeFiles/router_credit_test.dir/credit_test.cpp.o"
  "CMakeFiles/router_credit_test.dir/credit_test.cpp.o.d"
  "router_credit_test"
  "router_credit_test.pdb"
  "router_credit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_credit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
