file(REMOVE_RECURSE
  "CMakeFiles/router_sweep_test.dir/sweep_test.cpp.o"
  "CMakeFiles/router_sweep_test.dir/sweep_test.cpp.o.d"
  "router_sweep_test"
  "router_sweep_test.pdb"
  "router_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
