# Empty dependencies file for router_sweep_test.
# This may be replaced when dependencies are built.
