# CMake generated Testfile for 
# Source directory: /root/repo/tests/router
# Build directory: /root/repo/build/tests/router
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/router/router_flit_test[1]_include.cmake")
include("/root/repo/build/tests/router/router_params_test[1]_include.cmake")
include("/root/repo/build/tests/router/router_fifo_test[1]_include.cmake")
include("/root/repo/build/tests/router/router_blocks_test[1]_include.cmake")
include("/root/repo/build/tests/router/router_rasoc_test[1]_include.cmake")
include("/root/repo/build/tests/router/router_credit_test[1]_include.cmake")
include("/root/repo/build/tests/router/router_link_test[1]_include.cmake")
include("/root/repo/build/tests/router/router_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/router/router_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/router/router_timing_test[1]_include.cmake")
