# Empty compiler generated dependencies file for hw_netlist_test.
# This may be replaced when dependencies are built.
