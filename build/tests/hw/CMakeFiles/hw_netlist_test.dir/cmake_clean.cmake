file(REMOVE_RECURSE
  "CMakeFiles/hw_netlist_test.dir/netlist_test.cpp.o"
  "CMakeFiles/hw_netlist_test.dir/netlist_test.cpp.o.d"
  "hw_netlist_test"
  "hw_netlist_test.pdb"
  "hw_netlist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_netlist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
