# CMake generated Testfile for 
# Source directory: /root/repo/tests/tech
# Build directory: /root/repo/build/tests/tech
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tech/tech_mapper_test[1]_include.cmake")
include("/root/repo/build/tests/tech/tech_timing_test[1]_include.cmake")
include("/root/repo/build/tests/tech/tech_report_test[1]_include.cmake")
include("/root/repo/build/tests/tech/tech_table_relations_test[1]_include.cmake")
