file(REMOVE_RECURSE
  "CMakeFiles/tech_mapper_test.dir/mapper_test.cpp.o"
  "CMakeFiles/tech_mapper_test.dir/mapper_test.cpp.o.d"
  "tech_mapper_test"
  "tech_mapper_test.pdb"
  "tech_mapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tech_mapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
