# Empty compiler generated dependencies file for tech_mapper_test.
# This may be replaced when dependencies are built.
