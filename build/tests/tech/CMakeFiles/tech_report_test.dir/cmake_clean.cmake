file(REMOVE_RECURSE
  "CMakeFiles/tech_report_test.dir/report_test.cpp.o"
  "CMakeFiles/tech_report_test.dir/report_test.cpp.o.d"
  "tech_report_test"
  "tech_report_test.pdb"
  "tech_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tech_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
