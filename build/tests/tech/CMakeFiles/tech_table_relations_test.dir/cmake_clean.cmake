file(REMOVE_RECURSE
  "CMakeFiles/tech_table_relations_test.dir/table_relations_test.cpp.o"
  "CMakeFiles/tech_table_relations_test.dir/table_relations_test.cpp.o.d"
  "tech_table_relations_test"
  "tech_table_relations_test.pdb"
  "tech_table_relations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tech_table_relations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
