# Empty compiler generated dependencies file for tech_table_relations_test.
# This may be replaced when dependencies are built.
