file(REMOVE_RECURSE
  "CMakeFiles/gates_netlist_test.dir/netlist_test.cpp.o"
  "CMakeFiles/gates_netlist_test.dir/netlist_test.cpp.o.d"
  "gates_netlist_test"
  "gates_netlist_test.pdb"
  "gates_netlist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gates_netlist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
