# Empty compiler generated dependencies file for gates_netlist_test.
# This may be replaced when dependencies are built.
