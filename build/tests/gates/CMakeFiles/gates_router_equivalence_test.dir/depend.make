# Empty dependencies file for gates_router_equivalence_test.
# This may be replaced when dependencies are built.
