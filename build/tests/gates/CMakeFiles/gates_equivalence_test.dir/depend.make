# Empty dependencies file for gates_equivalence_test.
# This may be replaced when dependencies are built.
