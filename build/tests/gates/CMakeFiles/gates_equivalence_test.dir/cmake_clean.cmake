file(REMOVE_RECURSE
  "CMakeFiles/gates_equivalence_test.dir/equivalence_test.cpp.o"
  "CMakeFiles/gates_equivalence_test.dir/equivalence_test.cpp.o.d"
  "gates_equivalence_test"
  "gates_equivalence_test.pdb"
  "gates_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gates_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
