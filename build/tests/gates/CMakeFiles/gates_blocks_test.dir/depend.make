# Empty dependencies file for gates_blocks_test.
# This may be replaced when dependencies are built.
