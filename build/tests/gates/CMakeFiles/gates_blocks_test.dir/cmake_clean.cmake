file(REMOVE_RECURSE
  "CMakeFiles/gates_blocks_test.dir/blocks_test.cpp.o"
  "CMakeFiles/gates_blocks_test.dir/blocks_test.cpp.o.d"
  "gates_blocks_test"
  "gates_blocks_test.pdb"
  "gates_blocks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gates_blocks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
