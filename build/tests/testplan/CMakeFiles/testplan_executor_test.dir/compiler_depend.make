# Empty compiler generated dependencies file for testplan_executor_test.
# This may be replaced when dependencies are built.
