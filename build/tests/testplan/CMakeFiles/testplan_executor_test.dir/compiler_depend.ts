# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for testplan_executor_test.
