file(REMOVE_RECURSE
  "CMakeFiles/testplan_executor_test.dir/executor_test.cpp.o"
  "CMakeFiles/testplan_executor_test.dir/executor_test.cpp.o.d"
  "testplan_executor_test"
  "testplan_executor_test.pdb"
  "testplan_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testplan_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
