# Empty compiler generated dependencies file for testplan_planner_test.
# This may be replaced when dependencies are built.
