file(REMOVE_RECURSE
  "CMakeFiles/testplan_planner_test.dir/planner_test.cpp.o"
  "CMakeFiles/testplan_planner_test.dir/planner_test.cpp.o.d"
  "testplan_planner_test"
  "testplan_planner_test.pdb"
  "testplan_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testplan_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
