# CMake generated Testfile for 
# Source directory: /root/repo/tests/testplan
# Build directory: /root/repo/build/tests/testplan
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/testplan/testplan_planner_test[1]_include.cmake")
include("/root/repo/build/tests/testplan/testplan_executor_test[1]_include.cmake")
