# Empty dependencies file for femtojava_test.
# This may be replaced when dependencies are built.
