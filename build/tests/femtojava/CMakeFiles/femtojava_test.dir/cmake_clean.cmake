file(REMOVE_RECURSE
  "CMakeFiles/femtojava_test.dir/femtojava_test.cpp.o"
  "CMakeFiles/femtojava_test.dir/femtojava_test.cpp.o.d"
  "femtojava_test"
  "femtojava_test.pdb"
  "femtojava_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/femtojava_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
