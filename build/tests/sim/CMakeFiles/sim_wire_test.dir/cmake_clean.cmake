file(REMOVE_RECURSE
  "CMakeFiles/sim_wire_test.dir/wire_test.cpp.o"
  "CMakeFiles/sim_wire_test.dir/wire_test.cpp.o.d"
  "sim_wire_test"
  "sim_wire_test.pdb"
  "sim_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
