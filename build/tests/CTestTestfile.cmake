# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("hw")
subdirs("gates")
subdirs("tech")
subdirs("router")
subdirs("softcore")
subdirs("noc")
subdirs("baseline")
subdirs("femtojava")
subdirs("testplan")
subdirs("soc")
