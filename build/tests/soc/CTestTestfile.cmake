# CMake generated Testfile for 
# Source directory: /root/repo/tests/soc
# Build directory: /root/repo/build/tests/soc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/soc/soc_transaction_test[1]_include.cmake")
