# Empty compiler generated dependencies file for soc_transaction_test.
# This may be replaced when dependencies are built.
