file(REMOVE_RECURSE
  "CMakeFiles/soc_transaction_test.dir/transaction_test.cpp.o"
  "CMakeFiles/soc_transaction_test.dir/transaction_test.cpp.o.d"
  "soc_transaction_test"
  "soc_transaction_test.pdb"
  "soc_transaction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_transaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
