# Empty dependencies file for baseline_bus_test.
# This may be replaced when dependencies are built.
