file(REMOVE_RECURSE
  "CMakeFiles/baseline_bus_test.dir/bus_test.cpp.o"
  "CMakeFiles/baseline_bus_test.dir/bus_test.cpp.o.d"
  "baseline_bus_test"
  "baseline_bus_test.pdb"
  "baseline_bus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_bus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
