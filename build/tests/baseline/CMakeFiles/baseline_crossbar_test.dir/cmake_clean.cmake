file(REMOVE_RECURSE
  "CMakeFiles/baseline_crossbar_test.dir/crossbar_test.cpp.o"
  "CMakeFiles/baseline_crossbar_test.dir/crossbar_test.cpp.o.d"
  "baseline_crossbar_test"
  "baseline_crossbar_test.pdb"
  "baseline_crossbar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_crossbar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
