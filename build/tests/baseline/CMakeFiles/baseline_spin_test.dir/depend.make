# Empty dependencies file for baseline_spin_test.
# This may be replaced when dependencies are built.
