file(REMOVE_RECURSE
  "CMakeFiles/baseline_spin_test.dir/spin_test.cpp.o"
  "CMakeFiles/baseline_spin_test.dir/spin_test.cpp.o.d"
  "baseline_spin_test"
  "baseline_spin_test.pdb"
  "baseline_spin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_spin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
