# Empty dependencies file for baseline_misc_test.
# This may be replaced when dependencies are built.
