file(REMOVE_RECURSE
  "CMakeFiles/baseline_misc_test.dir/baseline_misc_test.cpp.o"
  "CMakeFiles/baseline_misc_test.dir/baseline_misc_test.cpp.o.d"
  "baseline_misc_test"
  "baseline_misc_test.pdb"
  "baseline_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
