# CMake generated Testfile for 
# Source directory: /root/repo/tests/softcore
# Build directory: /root/repo/build/tests/softcore
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/softcore/softcore_elaborate_test[1]_include.cmake")
include("/root/repo/build/tests/softcore/softcore_netlists_test[1]_include.cmake")
include("/root/repo/build/tests/softcore/softcore_vhdl_writer_test[1]_include.cmake")
