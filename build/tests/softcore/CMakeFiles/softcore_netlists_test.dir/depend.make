# Empty dependencies file for softcore_netlists_test.
# This may be replaced when dependencies are built.
