file(REMOVE_RECURSE
  "CMakeFiles/softcore_netlists_test.dir/netlists_test.cpp.o"
  "CMakeFiles/softcore_netlists_test.dir/netlists_test.cpp.o.d"
  "softcore_netlists_test"
  "softcore_netlists_test.pdb"
  "softcore_netlists_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softcore_netlists_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
