file(REMOVE_RECURSE
  "CMakeFiles/softcore_vhdl_writer_test.dir/vhdl_writer_test.cpp.o"
  "CMakeFiles/softcore_vhdl_writer_test.dir/vhdl_writer_test.cpp.o.d"
  "softcore_vhdl_writer_test"
  "softcore_vhdl_writer_test.pdb"
  "softcore_vhdl_writer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softcore_vhdl_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
