# Empty dependencies file for softcore_vhdl_writer_test.
# This may be replaced when dependencies are built.
