# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for softcore_vhdl_writer_test.
