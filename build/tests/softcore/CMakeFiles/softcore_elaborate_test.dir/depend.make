# Empty dependencies file for softcore_elaborate_test.
# This may be replaced when dependencies are built.
