file(REMOVE_RECURSE
  "CMakeFiles/softcore_elaborate_test.dir/elaborate_test.cpp.o"
  "CMakeFiles/softcore_elaborate_test.dir/elaborate_test.cpp.o.d"
  "softcore_elaborate_test"
  "softcore_elaborate_test.pdb"
  "softcore_elaborate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softcore_elaborate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
