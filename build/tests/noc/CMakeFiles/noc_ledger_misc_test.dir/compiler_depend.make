# Empty compiler generated dependencies file for noc_ledger_misc_test.
# This may be replaced when dependencies are built.
