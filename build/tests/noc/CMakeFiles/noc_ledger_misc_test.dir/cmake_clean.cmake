file(REMOVE_RECURSE
  "CMakeFiles/noc_ledger_misc_test.dir/ledger_misc_test.cpp.o"
  "CMakeFiles/noc_ledger_misc_test.dir/ledger_misc_test.cpp.o.d"
  "noc_ledger_misc_test"
  "noc_ledger_misc_test.pdb"
  "noc_ledger_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_ledger_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
