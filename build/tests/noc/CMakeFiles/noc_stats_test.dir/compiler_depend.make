# Empty compiler generated dependencies file for noc_stats_test.
# This may be replaced when dependencies are built.
