file(REMOVE_RECURSE
  "CMakeFiles/noc_stats_test.dir/stats_test.cpp.o"
  "CMakeFiles/noc_stats_test.dir/stats_test.cpp.o.d"
  "noc_stats_test"
  "noc_stats_test.pdb"
  "noc_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
