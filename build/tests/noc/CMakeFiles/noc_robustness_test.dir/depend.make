# Empty dependencies file for noc_robustness_test.
# This may be replaced when dependencies are built.
