file(REMOVE_RECURSE
  "CMakeFiles/noc_robustness_test.dir/robustness_test.cpp.o"
  "CMakeFiles/noc_robustness_test.dir/robustness_test.cpp.o.d"
  "noc_robustness_test"
  "noc_robustness_test.pdb"
  "noc_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
