# Empty dependencies file for noc_topology_test.
# This may be replaced when dependencies are built.
