file(REMOVE_RECURSE
  "CMakeFiles/noc_topology_test.dir/topology_test.cpp.o"
  "CMakeFiles/noc_topology_test.dir/topology_test.cpp.o.d"
  "noc_topology_test"
  "noc_topology_test.pdb"
  "noc_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
