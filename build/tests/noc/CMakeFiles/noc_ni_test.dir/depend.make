# Empty dependencies file for noc_ni_test.
# This may be replaced when dependencies are built.
