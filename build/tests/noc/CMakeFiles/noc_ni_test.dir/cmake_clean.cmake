file(REMOVE_RECURSE
  "CMakeFiles/noc_ni_test.dir/ni_test.cpp.o"
  "CMakeFiles/noc_ni_test.dir/ni_test.cpp.o.d"
  "noc_ni_test"
  "noc_ni_test.pdb"
  "noc_ni_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_ni_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
