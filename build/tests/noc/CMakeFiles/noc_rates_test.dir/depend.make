# Empty dependencies file for noc_rates_test.
# This may be replaced when dependencies are built.
