file(REMOVE_RECURSE
  "CMakeFiles/noc_rates_test.dir/rates_test.cpp.o"
  "CMakeFiles/noc_rates_test.dir/rates_test.cpp.o.d"
  "noc_rates_test"
  "noc_rates_test.pdb"
  "noc_rates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_rates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
