# Empty compiler generated dependencies file for noc_appmap_test.
# This may be replaced when dependencies are built.
