
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/noc/appmap_test.cpp" "tests/noc/CMakeFiles/noc_appmap_test.dir/appmap_test.cpp.o" "gcc" "tests/noc/CMakeFiles/noc_appmap_test.dir/appmap_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rasoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/rasoc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/gates/CMakeFiles/rasoc_gates.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/rasoc_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/router/CMakeFiles/rasoc_router.dir/DependInfo.cmake"
  "/root/repo/build/src/softcore/CMakeFiles/rasoc_softcore.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/rasoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/rasoc_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/femtojava/CMakeFiles/rasoc_femtojava.dir/DependInfo.cmake"
  "/root/repo/build/src/testplan/CMakeFiles/rasoc_testplan.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/rasoc_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
