file(REMOVE_RECURSE
  "CMakeFiles/noc_appmap_test.dir/appmap_test.cpp.o"
  "CMakeFiles/noc_appmap_test.dir/appmap_test.cpp.o.d"
  "noc_appmap_test"
  "noc_appmap_test.pdb"
  "noc_appmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_appmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
