file(REMOVE_RECURSE
  "CMakeFiles/noc_traffic_test.dir/traffic_test.cpp.o"
  "CMakeFiles/noc_traffic_test.dir/traffic_test.cpp.o.d"
  "noc_traffic_test"
  "noc_traffic_test.pdb"
  "noc_traffic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_traffic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
