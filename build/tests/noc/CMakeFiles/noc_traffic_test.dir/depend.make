# Empty dependencies file for noc_traffic_test.
# This may be replaced when dependencies are built.
