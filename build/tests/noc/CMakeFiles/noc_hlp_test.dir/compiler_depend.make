# Empty compiler generated dependencies file for noc_hlp_test.
# This may be replaced when dependencies are built.
