file(REMOVE_RECURSE
  "CMakeFiles/noc_hlp_test.dir/hlp_test.cpp.o"
  "CMakeFiles/noc_hlp_test.dir/hlp_test.cpp.o.d"
  "noc_hlp_test"
  "noc_hlp_test.pdb"
  "noc_hlp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_hlp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
