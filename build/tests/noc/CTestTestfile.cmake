# CMake generated Testfile for 
# Source directory: /root/repo/tests/noc
# Build directory: /root/repo/build/tests/noc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/noc/noc_topology_test[1]_include.cmake")
include("/root/repo/build/tests/noc/noc_stats_test[1]_include.cmake")
include("/root/repo/build/tests/noc/noc_traffic_test[1]_include.cmake")
include("/root/repo/build/tests/noc/noc_mesh_test[1]_include.cmake")
include("/root/repo/build/tests/noc/noc_hlp_test[1]_include.cmake")
include("/root/repo/build/tests/noc/noc_ni_test[1]_include.cmake")
include("/root/repo/build/tests/noc/noc_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/noc/noc_appmap_test[1]_include.cmake")
include("/root/repo/build/tests/noc/noc_routing_test[1]_include.cmake")
include("/root/repo/build/tests/noc/noc_rates_test[1]_include.cmake")
include("/root/repo/build/tests/noc/noc_ledger_misc_test[1]_include.cmake")
