file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_arbiter.dir/bench_ablation_arbiter.cpp.o"
  "CMakeFiles/bench_ablation_arbiter.dir/bench_ablation_arbiter.cpp.o.d"
  "bench_ablation_arbiter"
  "bench_ablation_arbiter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_arbiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
