# Empty dependencies file for bench_ablation_arbiter.
# This may be replaced when dependencies are built.
