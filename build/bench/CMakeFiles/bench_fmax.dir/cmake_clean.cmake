file(REMOVE_RECURSE
  "CMakeFiles/bench_fmax.dir/bench_fmax.cpp.o"
  "CMakeFiles/bench_fmax.dir/bench_fmax.cpp.o.d"
  "bench_fmax"
  "bench_fmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
