# Empty dependencies file for bench_table2_router_costs.
# This may be replaced when dependencies are built.
