# Empty dependencies file for bench_test_planning.
# This may be replaced when dependencies are built.
