file(REMOVE_RECURSE
  "CMakeFiles/bench_test_planning.dir/bench_test_planning.cpp.o"
  "CMakeFiles/bench_test_planning.dir/bench_test_planning.cpp.o.d"
  "bench_test_planning"
  "bench_test_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_test_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
