file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_femtojava.dir/bench_table4_femtojava.cpp.o"
  "CMakeFiles/bench_table4_femtojava.dir/bench_table4_femtojava.cpp.o.d"
  "bench_table4_femtojava"
  "bench_table4_femtojava.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_femtojava.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
