# Empty dependencies file for bench_table4_femtojava.
# This may be replaced when dependencies are built.
