# Empty compiler generated dependencies file for bench_ablation_flowctrl.
# This may be replaced when dependencies are built.
