file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_flowctrl.dir/bench_ablation_flowctrl.cpp.o"
  "CMakeFiles/bench_ablation_flowctrl.dir/bench_ablation_flowctrl.cpp.o.d"
  "bench_ablation_flowctrl"
  "bench_ablation_flowctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_flowctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
