# Empty dependencies file for bench_noc_loadsweep.
# This may be replaced when dependencies are built.
