file(REMOVE_RECURSE
  "CMakeFiles/bench_noc_loadsweep.dir/bench_noc_loadsweep.cpp.o"
  "CMakeFiles/bench_noc_loadsweep.dir/bench_noc_loadsweep.cpp.o.d"
  "bench_noc_loadsweep"
  "bench_noc_loadsweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noc_loadsweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
