file(REMOVE_RECURSE
  "CMakeFiles/bench_noc_vs_bus.dir/bench_noc_vs_bus.cpp.o"
  "CMakeFiles/bench_noc_vs_bus.dir/bench_noc_vs_bus.cpp.o.d"
  "bench_noc_vs_bus"
  "bench_noc_vs_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noc_vs_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
