# Empty compiler generated dependencies file for bench_noc_vs_bus.
# This may be replaced when dependencies are built.
