file(REMOVE_RECURSE
  "librasoc_femtojava.a"
)
