file(REMOVE_RECURSE
  "CMakeFiles/rasoc_femtojava.dir/femtojava.cpp.o"
  "CMakeFiles/rasoc_femtojava.dir/femtojava.cpp.o.d"
  "librasoc_femtojava.a"
  "librasoc_femtojava.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasoc_femtojava.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
