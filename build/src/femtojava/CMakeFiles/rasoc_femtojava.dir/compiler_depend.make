# Empty compiler generated dependencies file for rasoc_femtojava.
# This may be replaced when dependencies are built.
