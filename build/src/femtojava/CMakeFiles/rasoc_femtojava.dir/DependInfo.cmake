
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/femtojava/femtojava.cpp" "src/femtojava/CMakeFiles/rasoc_femtojava.dir/femtojava.cpp.o" "gcc" "src/femtojava/CMakeFiles/rasoc_femtojava.dir/femtojava.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tech/CMakeFiles/rasoc_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/softcore/CMakeFiles/rasoc_softcore.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/rasoc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/router/CMakeFiles/rasoc_router.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rasoc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
