# Empty compiler generated dependencies file for rasoc_hw.
# This may be replaced when dependencies are built.
