file(REMOVE_RECURSE
  "CMakeFiles/rasoc_hw.dir/netlist.cpp.o"
  "CMakeFiles/rasoc_hw.dir/netlist.cpp.o.d"
  "librasoc_hw.a"
  "librasoc_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasoc_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
