file(REMOVE_RECURSE
  "librasoc_hw.a"
)
