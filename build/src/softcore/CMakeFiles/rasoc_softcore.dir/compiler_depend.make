# Empty compiler generated dependencies file for rasoc_softcore.
# This may be replaced when dependencies are built.
