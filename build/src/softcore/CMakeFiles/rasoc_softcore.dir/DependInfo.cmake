
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/softcore/elaborate.cpp" "src/softcore/CMakeFiles/rasoc_softcore.dir/elaborate.cpp.o" "gcc" "src/softcore/CMakeFiles/rasoc_softcore.dir/elaborate.cpp.o.d"
  "/root/repo/src/softcore/entity.cpp" "src/softcore/CMakeFiles/rasoc_softcore.dir/entity.cpp.o" "gcc" "src/softcore/CMakeFiles/rasoc_softcore.dir/entity.cpp.o.d"
  "/root/repo/src/softcore/netlists.cpp" "src/softcore/CMakeFiles/rasoc_softcore.dir/netlists.cpp.o" "gcc" "src/softcore/CMakeFiles/rasoc_softcore.dir/netlists.cpp.o.d"
  "/root/repo/src/softcore/vhdl_writer.cpp" "src/softcore/CMakeFiles/rasoc_softcore.dir/vhdl_writer.cpp.o" "gcc" "src/softcore/CMakeFiles/rasoc_softcore.dir/vhdl_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/rasoc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/rasoc_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/router/CMakeFiles/rasoc_router.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rasoc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
