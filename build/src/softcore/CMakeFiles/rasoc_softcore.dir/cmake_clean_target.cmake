file(REMOVE_RECURSE
  "librasoc_softcore.a"
)
