file(REMOVE_RECURSE
  "CMakeFiles/rasoc_softcore.dir/elaborate.cpp.o"
  "CMakeFiles/rasoc_softcore.dir/elaborate.cpp.o.d"
  "CMakeFiles/rasoc_softcore.dir/entity.cpp.o"
  "CMakeFiles/rasoc_softcore.dir/entity.cpp.o.d"
  "CMakeFiles/rasoc_softcore.dir/netlists.cpp.o"
  "CMakeFiles/rasoc_softcore.dir/netlists.cpp.o.d"
  "CMakeFiles/rasoc_softcore.dir/vhdl_writer.cpp.o"
  "CMakeFiles/rasoc_softcore.dir/vhdl_writer.cpp.o.d"
  "librasoc_softcore.a"
  "librasoc_softcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasoc_softcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
