# Empty compiler generated dependencies file for rasoc_tech.
# This may be replaced when dependencies are built.
