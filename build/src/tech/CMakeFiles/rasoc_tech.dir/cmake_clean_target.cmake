file(REMOVE_RECURSE
  "librasoc_tech.a"
)
