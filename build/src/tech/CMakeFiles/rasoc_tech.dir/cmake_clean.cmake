file(REMOVE_RECURSE
  "CMakeFiles/rasoc_tech.dir/mapper.cpp.o"
  "CMakeFiles/rasoc_tech.dir/mapper.cpp.o.d"
  "CMakeFiles/rasoc_tech.dir/report.cpp.o"
  "CMakeFiles/rasoc_tech.dir/report.cpp.o.d"
  "CMakeFiles/rasoc_tech.dir/timing.cpp.o"
  "CMakeFiles/rasoc_tech.dir/timing.cpp.o.d"
  "librasoc_tech.a"
  "librasoc_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasoc_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
