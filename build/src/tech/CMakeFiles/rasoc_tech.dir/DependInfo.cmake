
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tech/mapper.cpp" "src/tech/CMakeFiles/rasoc_tech.dir/mapper.cpp.o" "gcc" "src/tech/CMakeFiles/rasoc_tech.dir/mapper.cpp.o.d"
  "/root/repo/src/tech/report.cpp" "src/tech/CMakeFiles/rasoc_tech.dir/report.cpp.o" "gcc" "src/tech/CMakeFiles/rasoc_tech.dir/report.cpp.o.d"
  "/root/repo/src/tech/timing.cpp" "src/tech/CMakeFiles/rasoc_tech.dir/timing.cpp.o" "gcc" "src/tech/CMakeFiles/rasoc_tech.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/rasoc_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
