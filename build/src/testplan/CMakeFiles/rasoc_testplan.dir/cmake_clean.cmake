file(REMOVE_RECURSE
  "CMakeFiles/rasoc_testplan.dir/executor.cpp.o"
  "CMakeFiles/rasoc_testplan.dir/executor.cpp.o.d"
  "CMakeFiles/rasoc_testplan.dir/testplan.cpp.o"
  "CMakeFiles/rasoc_testplan.dir/testplan.cpp.o.d"
  "librasoc_testplan.a"
  "librasoc_testplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasoc_testplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
