file(REMOVE_RECURSE
  "librasoc_testplan.a"
)
