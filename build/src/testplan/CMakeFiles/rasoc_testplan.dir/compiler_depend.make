# Empty compiler generated dependencies file for rasoc_testplan.
# This may be replaced when dependencies are built.
