file(REMOVE_RECURSE
  "librasoc_baseline.a"
)
