
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/bus.cpp" "src/baseline/CMakeFiles/rasoc_baseline.dir/bus.cpp.o" "gcc" "src/baseline/CMakeFiles/rasoc_baseline.dir/bus.cpp.o.d"
  "/root/repo/src/baseline/crossbar.cpp" "src/baseline/CMakeFiles/rasoc_baseline.dir/crossbar.cpp.o" "gcc" "src/baseline/CMakeFiles/rasoc_baseline.dir/crossbar.cpp.o.d"
  "/root/repo/src/baseline/spin.cpp" "src/baseline/CMakeFiles/rasoc_baseline.dir/spin.cpp.o" "gcc" "src/baseline/CMakeFiles/rasoc_baseline.dir/spin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/rasoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rasoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/router/CMakeFiles/rasoc_router.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
