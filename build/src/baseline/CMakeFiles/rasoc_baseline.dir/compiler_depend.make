# Empty compiler generated dependencies file for rasoc_baseline.
# This may be replaced when dependencies are built.
