file(REMOVE_RECURSE
  "CMakeFiles/rasoc_baseline.dir/bus.cpp.o"
  "CMakeFiles/rasoc_baseline.dir/bus.cpp.o.d"
  "CMakeFiles/rasoc_baseline.dir/crossbar.cpp.o"
  "CMakeFiles/rasoc_baseline.dir/crossbar.cpp.o.d"
  "CMakeFiles/rasoc_baseline.dir/spin.cpp.o"
  "CMakeFiles/rasoc_baseline.dir/spin.cpp.o.d"
  "librasoc_baseline.a"
  "librasoc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasoc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
