
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/appmap.cpp" "src/noc/CMakeFiles/rasoc_noc.dir/appmap.cpp.o" "gcc" "src/noc/CMakeFiles/rasoc_noc.dir/appmap.cpp.o.d"
  "/root/repo/src/noc/mesh.cpp" "src/noc/CMakeFiles/rasoc_noc.dir/mesh.cpp.o" "gcc" "src/noc/CMakeFiles/rasoc_noc.dir/mesh.cpp.o.d"
  "/root/repo/src/noc/ni.cpp" "src/noc/CMakeFiles/rasoc_noc.dir/ni.cpp.o" "gcc" "src/noc/CMakeFiles/rasoc_noc.dir/ni.cpp.o.d"
  "/root/repo/src/noc/stats.cpp" "src/noc/CMakeFiles/rasoc_noc.dir/stats.cpp.o" "gcc" "src/noc/CMakeFiles/rasoc_noc.dir/stats.cpp.o.d"
  "/root/repo/src/noc/traffic.cpp" "src/noc/CMakeFiles/rasoc_noc.dir/traffic.cpp.o" "gcc" "src/noc/CMakeFiles/rasoc_noc.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/router/CMakeFiles/rasoc_router.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rasoc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
