file(REMOVE_RECURSE
  "CMakeFiles/rasoc_noc.dir/appmap.cpp.o"
  "CMakeFiles/rasoc_noc.dir/appmap.cpp.o.d"
  "CMakeFiles/rasoc_noc.dir/mesh.cpp.o"
  "CMakeFiles/rasoc_noc.dir/mesh.cpp.o.d"
  "CMakeFiles/rasoc_noc.dir/ni.cpp.o"
  "CMakeFiles/rasoc_noc.dir/ni.cpp.o.d"
  "CMakeFiles/rasoc_noc.dir/stats.cpp.o"
  "CMakeFiles/rasoc_noc.dir/stats.cpp.o.d"
  "CMakeFiles/rasoc_noc.dir/traffic.cpp.o"
  "CMakeFiles/rasoc_noc.dir/traffic.cpp.o.d"
  "librasoc_noc.a"
  "librasoc_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasoc_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
