# Empty compiler generated dependencies file for rasoc_noc.
# This may be replaced when dependencies are built.
