file(REMOVE_RECURSE
  "librasoc_noc.a"
)
