file(REMOVE_RECURSE
  "librasoc_router.a"
)
