file(REMOVE_RECURSE
  "CMakeFiles/rasoc_router.dir/credit.cpp.o"
  "CMakeFiles/rasoc_router.dir/credit.cpp.o.d"
  "CMakeFiles/rasoc_router.dir/faulty_link.cpp.o"
  "CMakeFiles/rasoc_router.dir/faulty_link.cpp.o.d"
  "CMakeFiles/rasoc_router.dir/fifo.cpp.o"
  "CMakeFiles/rasoc_router.dir/fifo.cpp.o.d"
  "CMakeFiles/rasoc_router.dir/flit.cpp.o"
  "CMakeFiles/rasoc_router.dir/flit.cpp.o.d"
  "CMakeFiles/rasoc_router.dir/ic.cpp.o"
  "CMakeFiles/rasoc_router.dir/ic.cpp.o.d"
  "CMakeFiles/rasoc_router.dir/ifc.cpp.o"
  "CMakeFiles/rasoc_router.dir/ifc.cpp.o.d"
  "CMakeFiles/rasoc_router.dir/input_channel.cpp.o"
  "CMakeFiles/rasoc_router.dir/input_channel.cpp.o.d"
  "CMakeFiles/rasoc_router.dir/irs.cpp.o"
  "CMakeFiles/rasoc_router.dir/irs.cpp.o.d"
  "CMakeFiles/rasoc_router.dir/link.cpp.o"
  "CMakeFiles/rasoc_router.dir/link.cpp.o.d"
  "CMakeFiles/rasoc_router.dir/oc.cpp.o"
  "CMakeFiles/rasoc_router.dir/oc.cpp.o.d"
  "CMakeFiles/rasoc_router.dir/ods.cpp.o"
  "CMakeFiles/rasoc_router.dir/ods.cpp.o.d"
  "CMakeFiles/rasoc_router.dir/ofc.cpp.o"
  "CMakeFiles/rasoc_router.dir/ofc.cpp.o.d"
  "CMakeFiles/rasoc_router.dir/ors.cpp.o"
  "CMakeFiles/rasoc_router.dir/ors.cpp.o.d"
  "CMakeFiles/rasoc_router.dir/output_channel.cpp.o"
  "CMakeFiles/rasoc_router.dir/output_channel.cpp.o.d"
  "CMakeFiles/rasoc_router.dir/rasoc.cpp.o"
  "CMakeFiles/rasoc_router.dir/rasoc.cpp.o.d"
  "librasoc_router.a"
  "librasoc_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasoc_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
