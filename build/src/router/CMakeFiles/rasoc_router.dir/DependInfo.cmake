
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/router/credit.cpp" "src/router/CMakeFiles/rasoc_router.dir/credit.cpp.o" "gcc" "src/router/CMakeFiles/rasoc_router.dir/credit.cpp.o.d"
  "/root/repo/src/router/faulty_link.cpp" "src/router/CMakeFiles/rasoc_router.dir/faulty_link.cpp.o" "gcc" "src/router/CMakeFiles/rasoc_router.dir/faulty_link.cpp.o.d"
  "/root/repo/src/router/fifo.cpp" "src/router/CMakeFiles/rasoc_router.dir/fifo.cpp.o" "gcc" "src/router/CMakeFiles/rasoc_router.dir/fifo.cpp.o.d"
  "/root/repo/src/router/flit.cpp" "src/router/CMakeFiles/rasoc_router.dir/flit.cpp.o" "gcc" "src/router/CMakeFiles/rasoc_router.dir/flit.cpp.o.d"
  "/root/repo/src/router/ic.cpp" "src/router/CMakeFiles/rasoc_router.dir/ic.cpp.o" "gcc" "src/router/CMakeFiles/rasoc_router.dir/ic.cpp.o.d"
  "/root/repo/src/router/ifc.cpp" "src/router/CMakeFiles/rasoc_router.dir/ifc.cpp.o" "gcc" "src/router/CMakeFiles/rasoc_router.dir/ifc.cpp.o.d"
  "/root/repo/src/router/input_channel.cpp" "src/router/CMakeFiles/rasoc_router.dir/input_channel.cpp.o" "gcc" "src/router/CMakeFiles/rasoc_router.dir/input_channel.cpp.o.d"
  "/root/repo/src/router/irs.cpp" "src/router/CMakeFiles/rasoc_router.dir/irs.cpp.o" "gcc" "src/router/CMakeFiles/rasoc_router.dir/irs.cpp.o.d"
  "/root/repo/src/router/link.cpp" "src/router/CMakeFiles/rasoc_router.dir/link.cpp.o" "gcc" "src/router/CMakeFiles/rasoc_router.dir/link.cpp.o.d"
  "/root/repo/src/router/oc.cpp" "src/router/CMakeFiles/rasoc_router.dir/oc.cpp.o" "gcc" "src/router/CMakeFiles/rasoc_router.dir/oc.cpp.o.d"
  "/root/repo/src/router/ods.cpp" "src/router/CMakeFiles/rasoc_router.dir/ods.cpp.o" "gcc" "src/router/CMakeFiles/rasoc_router.dir/ods.cpp.o.d"
  "/root/repo/src/router/ofc.cpp" "src/router/CMakeFiles/rasoc_router.dir/ofc.cpp.o" "gcc" "src/router/CMakeFiles/rasoc_router.dir/ofc.cpp.o.d"
  "/root/repo/src/router/ors.cpp" "src/router/CMakeFiles/rasoc_router.dir/ors.cpp.o" "gcc" "src/router/CMakeFiles/rasoc_router.dir/ors.cpp.o.d"
  "/root/repo/src/router/output_channel.cpp" "src/router/CMakeFiles/rasoc_router.dir/output_channel.cpp.o" "gcc" "src/router/CMakeFiles/rasoc_router.dir/output_channel.cpp.o.d"
  "/root/repo/src/router/rasoc.cpp" "src/router/CMakeFiles/rasoc_router.dir/rasoc.cpp.o" "gcc" "src/router/CMakeFiles/rasoc_router.dir/rasoc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rasoc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
