# Empty compiler generated dependencies file for rasoc_router.
# This may be replaced when dependencies are built.
