file(REMOVE_RECURSE
  "librasoc_soc.a"
)
