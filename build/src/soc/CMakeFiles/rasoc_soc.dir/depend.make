# Empty dependencies file for rasoc_soc.
# This may be replaced when dependencies are built.
