file(REMOVE_RECURSE
  "CMakeFiles/rasoc_soc.dir/transaction.cpp.o"
  "CMakeFiles/rasoc_soc.dir/transaction.cpp.o.d"
  "librasoc_soc.a"
  "librasoc_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasoc_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
