file(REMOVE_RECURSE
  "CMakeFiles/rasoc_sim.dir/module.cpp.o"
  "CMakeFiles/rasoc_sim.dir/module.cpp.o.d"
  "CMakeFiles/rasoc_sim.dir/simulator.cpp.o"
  "CMakeFiles/rasoc_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/rasoc_sim.dir/trace.cpp.o"
  "CMakeFiles/rasoc_sim.dir/trace.cpp.o.d"
  "CMakeFiles/rasoc_sim.dir/vcd.cpp.o"
  "CMakeFiles/rasoc_sim.dir/vcd.cpp.o.d"
  "librasoc_sim.a"
  "librasoc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasoc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
