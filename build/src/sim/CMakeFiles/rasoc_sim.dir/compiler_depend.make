# Empty compiler generated dependencies file for rasoc_sim.
# This may be replaced when dependencies are built.
