file(REMOVE_RECURSE
  "librasoc_sim.a"
)
