
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gates/blocks.cpp" "src/gates/CMakeFiles/rasoc_gates.dir/blocks.cpp.o" "gcc" "src/gates/CMakeFiles/rasoc_gates.dir/blocks.cpp.o.d"
  "/root/repo/src/gates/netlist.cpp" "src/gates/CMakeFiles/rasoc_gates.dir/netlist.cpp.o" "gcc" "src/gates/CMakeFiles/rasoc_gates.dir/netlist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/router/CMakeFiles/rasoc_router.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rasoc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
