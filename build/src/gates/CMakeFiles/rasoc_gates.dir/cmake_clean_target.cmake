file(REMOVE_RECURSE
  "librasoc_gates.a"
)
