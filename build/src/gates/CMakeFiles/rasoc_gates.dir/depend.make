# Empty dependencies file for rasoc_gates.
# This may be replaced when dependencies are built.
