file(REMOVE_RECURSE
  "CMakeFiles/rasoc_gates.dir/blocks.cpp.o"
  "CMakeFiles/rasoc_gates.dir/blocks.cpp.o.d"
  "CMakeFiles/rasoc_gates.dir/netlist.cpp.o"
  "CMakeFiles/rasoc_gates.dir/netlist.cpp.o.d"
  "librasoc_gates.a"
  "librasoc_gates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasoc_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
